//! A single-process T-Cache deployment: database + N edge caches.

use crate::transport::{modeled_delivery_sink, DeliveryMode, ReactorPlane, RetryPolicy, TransportMode};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tcache_cache::{CacheStatsSnapshot, EdgeCache};
use tcache_db::stats::DbStatsSnapshot;
use tcache_db::Database;
use tcache_net::channel::ChannelStats;
use tcache_net::delivery::{DeliveryModel, DeliveryStatsSnapshot};
use tcache_net::fanout::InvalidationFanout;
use tcache_net::pipe::{OverflowPolicy, PipeStatsSnapshot};
use tcache_net::reactor::ReactorStats;
use tcache_types::{
    CacheId, ObjectId, ReadOnlyOutcome, SimDuration, SimTime, TCacheError, TCacheResult, TxnId,
    Value, Version, VersionedObject,
};

/// How long [`TCacheSystem::advance_time`] waits for the reactor to settle
/// before giving up (generous: the reactor usually drains in microseconds).
const ADVANCE_QUIESCE_TIMEOUT: Duration = Duration::from_secs(10);

/// The outcome of a read-only transaction issued through
/// [`TCacheSystem::read_transaction`].
pub type ReadOutcome = ReadOnlyOutcome;

/// A single-process deployment of the full T-Cache stack.
///
/// The system owns a backend [`Database`], one or more [`EdgeCache`]s and an
/// asynchronous invalidation channel per cache (cache serializability is a
/// per-cache-server property, so every cache has its own independently
/// seeded, independently lossy pipe from the database). It drives a virtual
/// clock: every operation advances time by a small tick and delivers the
/// invalidations that have become due, so the asynchronous (and, if
/// configured, lossy) nature of the channels is preserved even in a single
/// process.
///
/// Read-only transactions address a specific cache via
/// [`TCacheSystem::read_transaction_on`]; the id-less methods serve the
/// first cache, which keeps single-cache deployments (the default) as simple
/// as before.
#[derive(Debug)]
pub struct TCacheSystem {
    db: Arc<Database>,
    /// `caches[i].id() == CacheId(i)` — indexed access is the hot path.
    caches: Vec<Arc<EdgeCache>>,
    fanout: Mutex<InvalidationFanout>,
    clock: Mutex<SimTime>,
    tick: SimDuration,
    next_txn: AtomicU64,
    mode: TransportMode,
    delivery: DeliveryMode,
    /// Present iff `mode == TransportMode::Reactor`.
    reactor: Option<ReactorPlane>,
    /// `parents[i]` is the cache index leaf `i` subscribes through in the
    /// two-tier topology; all-`None` in the flat star.
    parents: Vec<Option<usize>>,
}

/// How the builder wires a [`TCacheSystem`] together: transport and
/// delivery planes, pipe shape, per-cache link models and the run seed the
/// delivery tasks derive their RNG streams from.
pub(crate) struct SystemWiring {
    pub(crate) tick: SimDuration,
    pub(crate) mode: TransportMode,
    pub(crate) delivery: DeliveryMode,
    pub(crate) pipe_capacity: usize,
    pub(crate) overflow_policy: OverflowPolicy,
    pub(crate) models: Vec<DeliveryModel>,
    pub(crate) seed: u64,
    pub(crate) retry: RetryPolicy,
    /// `parents[i]` names the cache index leaf `i` subscribes through
    /// (two-tier fan-out); all-`None` is the flat star topology.
    pub(crate) parents: Vec<Option<usize>>,
}

/// One cache server's slice of a [`SystemStats`] snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheNodeStats {
    /// The cache server.
    pub id: CacheId,
    /// This cache's statistics.
    pub cache: CacheStatsSnapshot,
    /// This cache's invalidation-channel statistics. Under
    /// [`DeliveryMode::Modeled`] these are synthesized from the publisher
    /// and delivery-task counters (the discrete-event channels are idle),
    /// so the same fields describe the link on either delivery plane.
    pub channel: ChannelStats,
    /// This cache's apply-pipe counters (all zero in
    /// [`TransportMode::Threaded`], which has no pipes).
    pub pipe: PipeStatsSnapshot,
    /// This cache's delivery-task counters — offered / dropped / delivered
    /// messages and total modeled delay — nonzero only under
    /// [`TransportMode::Reactor`] (and only the delivered/offered columns
    /// move under [`DeliveryMode::Clocked`], where the task is a reliable
    /// pass-through).
    pub delivery: DeliveryStatsSnapshot,
}

/// A combined statistics snapshot of the whole system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemStats {
    /// Cache-side statistics summed over every cache.
    pub cache: CacheStatsSnapshot,
    /// Database-side statistics.
    pub db: DbStatsSnapshot,
    /// Invalidation channel statistics summed over every per-cache channel.
    pub channel: ChannelStats,
    /// The per-cache breakdown, ordered by `CacheId`.
    pub per_cache: Vec<CacheNodeStats>,
}

impl TCacheSystem {
    pub(crate) fn new(
        db: Arc<Database>,
        caches: Vec<Arc<EdgeCache>>,
        fanout: InvalidationFanout,
        wiring: SystemWiring,
    ) -> Self {
        assert!(!caches.is_empty(), "a system needs at least one cache");
        debug_assert_eq!(caches.len(), fanout.cache_count());
        debug_assert_eq!(caches.len(), wiring.models.len());
        let parents = if wiring.parents.is_empty() {
            vec![None; caches.len()]
        } else {
            wiring.parents
        };
        assert_eq!(parents.len(), caches.len(), "one parent slot per cache");
        let two_tier = parents.iter().any(Option::is_some);
        if two_tier {
            assert_eq!(
                wiring.delivery,
                DeliveryMode::Modeled,
                "two-tier fan-out needs the modeled reactor pipeline"
            );
            for (leaf, parent) in parents.iter().enumerate() {
                if let Some(p) = *parent {
                    assert!(p < caches.len() && p != leaf, "parent index valid");
                    assert!(
                        parents[p].is_none(),
                        "a parent must itself be a root (one-level tree)"
                    );
                }
            }
        }
        let reactor = match wiring.mode {
            TransportMode::Threaded => None,
            TransportMode::Reactor => Some(ReactorPlane::new(
                &caches,
                wiring.pipe_capacity,
                wiring.overflow_policy,
                &wiring.models,
                wiring.seed,
                &parents,
            )),
        };
        if wiring.delivery == DeliveryMode::Modeled {
            // The live plane: wire the database's commit-path upcall (§IV)
            // straight into each *root* cache's delivery pipe. The reactor
            // task on the other end applies the cache's loss / latency
            // models; in the two-tier topology it also relays what it
            // applies into its children's pipes, so leaves never appear in
            // the publisher's fan-out list at all.
            let plane = reactor
                .as_ref()
                .expect("builder enforces Reactor transport for modeled delivery");
            for (index, cache) in caches.iter().enumerate() {
                if parents[index].is_some() {
                    continue;
                }
                db.register_reporting_invalidation_upcall(
                    cache.id(),
                    modeled_delivery_sink(
                        cache.id(),
                        plane.sender(index),
                        plane.severed_flag(index),
                        wiring.retry,
                    ),
                );
            }
        }
        TCacheSystem {
            db,
            caches,
            fanout: Mutex::new(fanout),
            clock: Mutex::new(SimTime::ZERO),
            tick: wiring.tick,
            next_txn: AtomicU64::new(1),
            mode: wiring.mode,
            delivery: wiring.delivery,
            reactor,
            parents,
        }
    }

    /// The transport mode this system was built with.
    pub fn transport_mode(&self) -> TransportMode {
        self.mode
    }

    /// The delivery mode this system was built with.
    pub fn delivery_mode(&self) -> DeliveryMode {
        self.delivery
    }

    /// Loads objects into the backend database at their initial version.
    pub fn populate(&self, objects: impl IntoIterator<Item = (ObjectId, Value)>) {
        self.db.populate(objects);
    }

    /// The backend database (for advanced use and inspection).
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The first edge cache (the only one in single-cache deployments).
    pub fn edge_cache(&self) -> &EdgeCache {
        &self.caches[0]
    }

    /// The edge cache with the given id, if deployed.
    pub fn cache(&self, id: CacheId) -> Option<&EdgeCache> {
        self.caches.get(id.0 as usize).map(Arc::as_ref)
    }

    /// Number of edge caches this system hosts.
    pub fn cache_count(&self) -> usize {
        self.caches.len()
    }

    /// The deployed cache ids, in order.
    pub fn cache_ids(&self) -> impl Iterator<Item = CacheId> + '_ {
        self.caches.iter().map(|c| c.id())
    }

    /// The parent a cache subscribes through in the two-tier topology, or
    /// `None` if it is a root (every cache is a root in the flat star).
    pub fn cache_parent(&self, id: CacheId) -> Option<CacheId> {
        self.parents
            .get(id.0 as usize)
            .copied()
            .flatten()
            .map(|index| self.caches[index].id())
    }

    /// Number of sinks the database publishes each committed batch to —
    /// every cache in the flat star, only the root caches in the two-tier
    /// topology. This is the root publisher's fan-out, the quantity the
    /// tree exists to shrink.
    pub fn publisher_fanout(&self) -> usize {
        self.parents.iter().filter(|p| p.is_none()).count()
    }

    /// Relay sends dropped on the parent→leaf hop because a leaf's bounded
    /// pipe was full; zero under the default unbounded capacity (and
    /// always zero in the flat star, which has no relay hop).
    pub fn relay_overflows(&self) -> u64 {
        self.reactor.as_ref().map_or(0, |p| p.relay_overflows())
    }

    /// The current virtual time of the system.
    pub fn now(&self) -> SimTime {
        *self.clock.lock()
    }

    /// Advances the virtual clock by `duration`, delivering every
    /// invalidation that becomes due on every cache's channel. Use this to
    /// model elapsed wall-clock time between transactions.
    ///
    /// Under [`TransportMode::Threaded`] the deliveries are applied
    /// synchronously on the calling thread. Under
    /// [`TransportMode::Reactor`] they are pushed down each cache's bounded
    /// pipe (applying its overflow policy — a full `Block` pipe blocks
    /// *here*, which is the backpressure landing on the committing client)
    /// and the call then waits for the reactor to settle, so unpaused
    /// caches observe the same state as in threaded mode. A paused cache's
    /// backlog is intentionally left in its pipe.
    pub fn advance_time(&self, duration: SimDuration) {
        let now = {
            let mut clock = self.clock.lock();
            *clock += duration;
            *clock
        };
        // Modeled delivery never routes through the discrete-event fanout
        // (the commit path feeds the pipes directly and the delivery tasks
        // run the clock-free link models), so there is nothing to deliver
        // — skip the fanout lock on this per-operation path entirely.
        if self.delivery == DeliveryMode::Modeled {
            return;
        }
        let due = self.fanout.lock().due(now);
        match &self.reactor {
            None => {
                for (cache, invalidation) in due {
                    self.caches[cache.0 as usize].apply_invalidation(invalidation);
                }
            }
            Some(plane) => {
                // Nothing became due: nothing new entered any pipe, and
                // prior deliveries were quiesced by the advance that made
                // them — skip the per-pipe settle pass on this hot path.
                // (An unpaused cache still draining a backlog is covered by
                // the explicit `quiesce()` the pause workflow uses.)
                if due.is_empty() {
                    return;
                }
                for (cache, invalidation) in due {
                    plane.deliver(cache.0 as usize, invalidation);
                }
                if !plane.quiesce(ADVANCE_QUIESCE_TIMEOUT) {
                    // The reactor did not settle: reads may briefly observe
                    // state a threaded transport would have invalidated.
                    // Counted so operators and tests can detect it — see
                    // [`TCacheSystem::quiesce_timeouts`].
                    plane.record_quiesce_timeout();
                }
            }
        }
    }

    /// Number of [`TCacheSystem::advance_time`] calls whose quiesce wait
    /// timed out before the reactor settled (always 0 in threaded mode).
    /// Nonzero means the threaded-equivalence guarantee was briefly
    /// violated: a read may have seen an entry the reactor had not yet
    /// invalidated.
    #[must_use]
    pub fn quiesce_timeouts(&self) -> u64 {
        self.reactor.as_ref().map_or(0, |p| p.quiesce_timeouts())
    }

    /// Waits until every unpaused cache's apply pipe is drained and its
    /// reactor task is idle (in-flight modeled delays included), returning
    /// whether the reactor settled before `timeout`.
    ///
    /// # Errors
    /// Returns [`TCacheError::UnsupportedTransport`] in
    /// [`TransportMode::Threaded`], which has no reactor to quiesce —
    /// distinguishing "nothing to wait for because deliveries are
    /// synchronous" from "the reactor settled" used to hide wiring bugs
    /// behind a silent `true`.
    #[must_use = "a fault-plane failure (unknown cache, wedged reactor) must be handled"]
    pub fn quiesce(&self, timeout: Duration) -> TCacheResult<bool> {
        match &self.reactor {
            None => Err(TCacheError::UnsupportedTransport {
                operation: "quiesce (no reactor under TransportMode::Threaded)",
            }),
            Some(plane) => Ok(plane.quiesce(timeout)),
        }
    }

    /// Looks up the index of a deployed cache.
    fn cache_index(&self, cache: CacheId) -> TCacheResult<usize> {
        let index = cache.0 as usize;
        if index >= self.caches.len() {
            return Err(TCacheError::UnknownCache(cache));
        }
        Ok(index)
    }

    /// The reactor plane, or the error naming the operation that needs it.
    fn fault_plane(&self, operation: &'static str) -> TCacheResult<&ReactorPlane> {
        self.reactor
            .as_ref()
            .ok_or(TCacheError::UnsupportedTransport { operation })
    }

    /// Pauses one cache's reactor apply task, modelling a slow or wedged
    /// edge cache: its pipe backs up and the overflow policy takes over.
    ///
    /// **Caution:** with a bounded pipe under [`OverflowPolicy::Block`],
    /// backpressure is *hard* — once the paused cache's pipe fills, the
    /// next delivery blocks the driving thread inside
    /// [`TCacheSystem::advance_time`] until the cache is resumed. Resume
    /// from another thread, or use a drop policy when wedging a cache on
    /// the thread that also publishes.
    ///
    /// # Errors
    /// Returns [`TCacheError::UnsupportedTransport`] in
    /// [`TransportMode::Threaded`] (there is no apply task to pause),
    /// [`TCacheError::UnknownCache`] if `cache` is not deployed, and
    /// [`TCacheError::InvalidCacheState`] if the cache is already paused
    /// or currently crashed (a crashed cache has no apply loop to wedge).
    #[must_use = "a fault-plane failure (unknown cache, wedged reactor) must be handled"]
    pub fn pause_cache(&self, cache: CacheId) -> TCacheResult<()> {
        let plane = self.fault_plane("pause_cache (no reactor under TransportMode::Threaded)")?;
        let index = self.cache_index(cache)?;
        if self.caches[index].is_crashed() {
            return Err(TCacheError::InvalidCacheState {
                cache,
                operation: "pause",
                state: "crashed",
            });
        }
        if plane.is_paused(index) {
            return Err(TCacheError::InvalidCacheState {
                cache,
                operation: "pause",
                state: "paused",
            });
        }
        plane.set_paused(index, true);
        Ok(())
    }

    /// Resumes a cache paused by [`TCacheSystem::pause_cache`]; its apply
    /// task drains whatever backlog accumulated.
    ///
    /// # Errors
    /// Returns [`TCacheError::UnsupportedTransport`] in
    /// [`TransportMode::Threaded`], [`TCacheError::UnknownCache`] if
    /// `cache` is not deployed, and [`TCacheError::InvalidCacheState`] if
    /// the cache was never paused.
    #[must_use = "a fault-plane failure (unknown cache, wedged reactor) must be handled"]
    pub fn resume_cache(&self, cache: CacheId) -> TCacheResult<()> {
        let plane = self.fault_plane("resume_cache (no reactor under TransportMode::Threaded)")?;
        let index = self.cache_index(cache)?;
        if !plane.is_paused(index) {
            return Err(TCacheError::InvalidCacheState {
                cache,
                operation: "resume",
                state: "running",
            });
        }
        plane.set_paused(index, false);
        Ok(())
    }

    /// Crashes one cache at virtual time `now`: its local store is lost
    /// and its invalidation link is severed — publishes to it are
    /// discarded (after the configured publish retries, if any) instead of
    /// entering its pipe, so a crashed cache can never block the commit
    /// path. The cache stays down until
    /// [`restart_cache`](TCacheSystem::restart_cache).
    ///
    /// # Errors
    /// Returns [`TCacheError::UnsupportedTransport`] in
    /// [`TransportMode::Threaded`] (the fault plane lives on the reactor's
    /// pipes) and [`TCacheError::UnknownCache`] if `cache` is not deployed.
    #[must_use = "a fault-plane failure (unknown cache, wedged reactor) must be handled"]
    pub fn crash_cache(&self, cache: CacheId, now: SimTime) -> TCacheResult<()> {
        let plane = self.fault_plane("crash_cache (no reactor under TransportMode::Threaded)")?;
        let index = self.cache_index(cache)?;
        plane.set_severed(index, true);
        self.caches[index].crash(now);
        Ok(())
    }

    /// Restarts a crashed cache: the link is restored and the cache comes
    /// back cold, adopting the database's current invalidation-stream
    /// position (see [`EdgeCache::restart`]).
    ///
    /// # Errors
    /// Same conditions as [`TCacheSystem::crash_cache`].
    #[must_use = "a fault-plane failure (unknown cache, wedged reactor) must be handled"]
    pub fn restart_cache(&self, cache: CacheId) -> TCacheResult<()> {
        let plane = self.fault_plane("restart_cache (no reactor under TransportMode::Threaded)")?;
        let index = self.cache_index(cache)?;
        self.caches[index].restart();
        plane.set_severed(index, false);
        Ok(())
    }

    /// Partitions one cache from the database at virtual time `now`: its
    /// store stays intact and keeps serving (staling) reads, but its
    /// invalidation link is severed until
    /// [`heal_cache`](TCacheSystem::heal_cache).
    ///
    /// # Errors
    /// Same conditions as [`TCacheSystem::crash_cache`].
    #[must_use = "a fault-plane failure (unknown cache, wedged reactor) must be handled"]
    pub fn partition_cache(&self, cache: CacheId, now: SimTime) -> TCacheResult<()> {
        let plane = self.fault_plane("partition_cache (no reactor under TransportMode::Threaded)")?;
        let index = self.cache_index(cache)?;
        plane.set_severed(index, true);
        self.caches[index].disconnect(now);
        Ok(())
    }

    /// Heals a partitioned cache's link; under
    /// [`RecoveryPolicy`](tcache_types::RecoveryPolicy)`::GapResync` the
    /// cache resyncs from the database's invalidation log before resuming
    /// cached reads (see [`EdgeCache::reconnect`]).
    ///
    /// # Errors
    /// Same conditions as [`TCacheSystem::crash_cache`].
    #[must_use = "a fault-plane failure (unknown cache, wedged reactor) must be handled"]
    pub fn heal_cache(&self, cache: CacheId) -> TCacheResult<()> {
        let plane = self.fault_plane("heal_cache (no reactor under TransportMode::Threaded)")?;
        let index = self.cache_index(cache)?;
        plane.set_severed(index, false);
        self.caches[index].reconnect();
        Ok(())
    }

    /// Whether a cache's invalidation link is currently severed by a
    /// crash or partition (always `false` in threaded mode).
    pub fn is_cache_severed(&self, cache: CacheId) -> bool {
        self.reactor.as_ref().is_some_and(|p| {
            (cache.0 as usize) < self.caches.len() && p.is_severed(cache.0 as usize)
        })
    }

    /// Sets the delay surcharge added to every invalidation delivered to
    /// `cache` on top of its modeled latency (a fault-plan delay spike;
    /// [`SimDuration::ZERO`] clears it). Under [`DeliveryMode::Clocked`]
    /// the surcharge applies in the discrete-event channel's virtual time;
    /// under [`DeliveryMode::Modeled`] the cache's delivery task sleeps it
    /// out in wall-clock time.
    ///
    /// # Errors
    /// Returns [`TCacheError::UnknownCache`] if `cache` is not deployed.
    #[must_use = "a fault-plane failure (unknown cache, wedged reactor) must be handled"]
    pub fn set_cache_extra_delay(&self, cache: CacheId, extra: SimDuration) -> TCacheResult<()> {
        let index = self.cache_index(cache)?;
        match self.delivery {
            DeliveryMode::Modeled => {
                let plane = self
                    .fault_plane("set_cache_extra_delay (modeled delivery without a reactor)")?;
                plane.set_extra_delay(index, extra);
            }
            DeliveryMode::Clocked => {
                self.fanout
                    .lock()
                    .channel_mut(cache)
                    .expect("index validated against the cache list")
                    .set_extra_delay(extra);
            }
        }
        Ok(())
    }

    /// Whether a cache's reactor apply task is paused (always `false` in
    /// threaded mode).
    pub fn is_cache_paused(&self, cache: CacheId) -> bool {
        self.reactor
            .as_ref()
            .is_some_and(|p| (cache.0 as usize) < self.caches.len() && p.is_paused(cache.0 as usize))
    }

    /// The reactor's counters, if the system runs in
    /// [`TransportMode::Reactor`].
    #[must_use]
    pub fn reactor_stats(&self) -> Option<ReactorStats> {
        self.reactor.as_ref().map(|p| p.reactor_stats())
    }

    /// Invalidations applied by one cache's reactor task so far (`None` in
    /// threaded mode or for an unknown cache).
    pub fn reactor_applied(&self, cache: CacheId) -> Option<u64> {
        self.reactor
            .as_ref()
            .filter(|_| (cache.0 as usize) < self.caches.len())
            .map(|p| p.applied(cache.0 as usize))
    }

    /// Executes an update transaction that reads and rewrites every object
    /// in `objects` (bumping its numeric payload), returning the version the
    /// transaction installed. Invalidations are published asynchronously on
    /// every cache's channel.
    ///
    /// # Errors
    /// Returns an error if any object is unknown or the database aborts the
    /// transaction.
    pub fn update(&self, objects: &[ObjectId]) -> TCacheResult<Version> {
        let txn = self.next_txn();
        let access: tcache_types::AccessSet = objects.iter().copied().collect();
        let commit = self.db.execute_update(txn, &access)?;
        self.broadcast(&commit);
        Ok(commit.version)
    }

    /// Executes an update transaction writing explicit values.
    ///
    /// # Errors
    /// Returns an error if any object is unknown or the database aborts the
    /// transaction.
    pub fn update_values(&self, writes: &[(ObjectId, Value)]) -> TCacheResult<Version> {
        let txn = self.next_txn();
        let records = writes
            .iter()
            .map(|(o, v)| tcache_types::WriteRecord::new(*o, v.clone()))
            .collect();
        let reads: Vec<ObjectId> = writes.iter().map(|(o, _)| *o).collect();
        let commit = self.db.execute_update_writes(txn, &reads, records)?;
        self.broadcast(&commit);
        Ok(commit.version)
    }

    /// Publishes a committed update's invalidations on every cache's
    /// channel. [`TCacheSystem::update`] does this automatically; call it
    /// directly for update transactions executed against
    /// [`TCacheSystem::database`] by hand.
    ///
    /// Under [`DeliveryMode::Modeled`] this is a no-op: the database's
    /// registered upcalls already pushed the batch into every cache's
    /// delivery pipe at commit time, so publishing it again here would
    /// deliver everything twice.
    pub fn publish_invalidations(&self, commit: &tcache_db::UpdateCommit) {
        if self.delivery == DeliveryMode::Modeled {
            return;
        }
        let now = self.now();
        self.fanout
            .lock()
            .broadcast(now, commit.invalidations.invalidations());
    }

    fn broadcast(&self, commit: &tcache_db::UpdateCommit) {
        self.publish_invalidations(commit);
        self.advance_time(self.tick);
    }

    /// Executes a read-only transaction through the given edge cache. The
    /// reads are checked against each other with the T-Cache violation
    /// predicates; a detected inconsistency is reported as
    /// [`ReadOutcome::Aborted`] (when the configured strategy cannot repair
    /// it locally).
    ///
    /// # Errors
    /// Returns an error if `cache` is not deployed or any object does not
    /// exist in the backend.
    pub fn read_transaction_on(
        &self,
        cache: CacheId,
        objects: &[ObjectId],
    ) -> TCacheResult<ReadOutcome> {
        let server = self
            .cache(cache)
            .ok_or(TCacheError::UnknownCache(cache))?;
        let txn = self.next_txn();
        let now = self.now();
        let outcome = server.execute_transaction(now, txn, objects)?;
        self.advance_time(self.tick);
        Ok(outcome)
    }

    /// Executes a read-only transaction through the first edge cache.
    ///
    /// # Errors
    /// Returns an error if any object does not exist in the backend.
    pub fn read_transaction(&self, objects: &[ObjectId]) -> TCacheResult<ReadOutcome> {
        self.read_transaction_on(self.caches[0].id(), objects)
    }

    /// Reads a single object through the given cache (a one-read
    /// transaction).
    ///
    /// # Errors
    /// Returns an error if `cache` is not deployed or the object does not
    /// exist in the backend.
    pub fn read_on(&self, cache: CacheId, object: ObjectId) -> TCacheResult<VersionedObject> {
        match self.read_transaction_on(cache, &[object])? {
            ReadOnlyOutcome::Committed(mut values) => {
                Ok(values.pop().expect("single-read transaction returns one value"))
            }
            ReadOnlyOutcome::Aborted { violating_object } => Err(TCacheError::InconsistencyAbort {
                txn: TxnId(0),
                violating_object,
            }),
        }
    }

    /// Reads a single object through the first cache.
    ///
    /// # Errors
    /// Returns an error if the object does not exist in the backend.
    pub fn read(&self, object: ObjectId) -> TCacheResult<VersionedObject> {
        self.read_on(self.caches[0].id(), object)
    }

    /// A combined statistics snapshot: aggregates over every cache plus the
    /// per-cache breakdown.
    ///
    /// Under [`DeliveryMode::Modeled`] the per-cache [`ChannelStats`] view
    /// is synthesized from the publisher's and the delivery task's
    /// counters (`sent` = invalidations the commit path offered, `dropped`
    /// = loss-model drops in the reactor task, `delivered` = applications,
    /// overflow/stalls from the pipe's policy), so experiment plumbing
    /// reads the same link statistics on either delivery plane.
    #[must_use]
    pub fn stats(&self) -> SystemStats {
        // The idle discrete-event fanout is not even consulted in Modeled
        // mode; its channel view is synthesized below instead.
        let channel_stats = match self.delivery {
            DeliveryMode::Clocked => Some(self.fanout.lock().stats()),
            DeliveryMode::Modeled => None,
        };
        let publish_stats = (self.delivery == DeliveryMode::Modeled)
            .then(|| self.db.publish_stats());
        let per_cache: Vec<CacheNodeStats> = self
            .caches
            .iter()
            .enumerate()
            .map(|(index, cache)| {
                let delivery = self
                    .reactor
                    .as_ref()
                    .map(|p| p.delivery_stats(index))
                    .unwrap_or_default();
                let channel = match (&channel_stats, &publish_stats) {
                    (Some(channels), _) => {
                        let (channel_id, channel) = channels[index];
                        debug_assert_eq!(cache.id(), channel_id);
                        channel
                    }
                    (None, Some(publishes)) => {
                        if self.parents[index].is_some() {
                            // A two-tier leaf has no publisher upcall: its
                            // link is fed by the parent's relay, so `sent`
                            // is what the relay put into its pipe.
                            ChannelStats {
                                sent: delivery.offered,
                                dropped: delivery.dropped,
                                delivered: delivery.delivered,
                                overflowed: 0,
                                stalled: 0,
                            }
                        } else {
                            let publish = publishes
                                .iter()
                                .find(|(id, _)| *id == cache.id())
                                .map(|&(_, stats)| stats)
                                .unwrap_or_default();
                            ChannelStats {
                                // Severed publishes never reached the link.
                                sent: publish.invalidations.saturating_sub(publish.severed),
                                dropped: delivery.dropped,
                                delivered: delivery.delivered,
                                overflowed: publish.overflowed,
                                stalled: publish.stalled_publishes,
                            }
                        }
                    }
                    (None, None) => unreachable!("one channel source per delivery mode"),
                };
                CacheNodeStats {
                    id: cache.id(),
                    cache: cache.stats(),
                    channel,
                    pipe: self
                        .reactor
                        .as_ref()
                        .map(|p| p.pipe_stats(index))
                        .unwrap_or_default(),
                    delivery,
                }
            })
            .collect();
        let mut cache_total = CacheStatsSnapshot::default();
        let mut channel_total = ChannelStats::default();
        for node in &per_cache {
            cache_total.merge(node.cache);
            channel_total.merge(node.channel);
        }
        SystemStats {
            cache: cache_total,
            db: self.db.stats(),
            channel: channel_total,
            per_cache,
        }
    }

    fn next_txn(&self) -> TxnId {
        TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::SystemBuilder;
    use crate::transport::TransportMode;
    use tcache_types::{CacheId, ObjectId, Strategy, TCacheError, Value};

    fn small_system(loss: f64) -> super::TCacheSystem {
        let system = SystemBuilder::new()
            .dependency_bound(3)
            .strategy(Strategy::Abort)
            .invalidation_loss(loss)
            .seed(7)
            .build();
        system.populate((0..20).map(|i| (ObjectId(i), Value::new(0))));
        system
    }

    fn multi_system(losses: &[f64]) -> super::TCacheSystem {
        let system = SystemBuilder::new()
            .dependency_bound(3)
            .strategy(Strategy::Abort)
            .cache_loss_rates(losses.to_vec())
            .seed(7)
            .build();
        system.populate((0..20).map(|i| (ObjectId(i), Value::new(0))));
        system
    }

    #[test]
    fn update_then_read_round_trip() {
        let system = small_system(0.0);
        let v1 = system.update(&[ObjectId(1), ObjectId(2)]).unwrap();
        let outcome = system
            .read_transaction(&[ObjectId(1), ObjectId(2)])
            .unwrap();
        let values = outcome.values().expect("committed");
        assert_eq!(values.len(), 2);
        assert!(values.iter().all(|v| v.version == v1));
        assert_eq!(system.read(ObjectId(1)).unwrap().version, v1);
        assert!(system.stats().db.updates_committed >= 1);
        assert!(system.now() > tcache_types::SimTime::ZERO);
        assert_eq!(system.cache_count(), 1);
    }

    #[test]
    fn update_values_writes_explicit_payloads() {
        let system = small_system(0.0);
        system
            .update_values(&[(ObjectId(3), Value::new(99))])
            .unwrap();
        assert_eq!(system.read(ObjectId(3)).unwrap().value.numeric(), 99);
    }

    #[test]
    fn lossy_channel_leaves_stale_entries_that_tcache_detects() {
        // Loss of 100 % means no invalidation ever arrives; after warming the
        // cache and updating the pair, the mixed read must be detected.
        let system = small_system(1.0);
        system.read_transaction(&[ObjectId(1)]).unwrap(); // warm object 1 only
        system.update(&[ObjectId(1), ObjectId(2)]).unwrap();
        // Object 2 misses (fresh), object 1 is stale in the cache.
        let outcome = system
            .read_transaction(&[ObjectId(2), ObjectId(1)])
            .unwrap();
        assert!(outcome.is_aborted(), "the stale pair must be detected");
        assert!(system.read(ObjectId(2)).is_ok());
    }

    #[test]
    fn unknown_objects_error() {
        let system = small_system(0.0);
        assert!(system.update(&[ObjectId(999)]).is_err());
        assert!(system.read(ObjectId(999)).is_err());
        assert!(system.read_transaction(&[ObjectId(999)]).is_err());
    }

    #[test]
    fn advance_time_delivers_invalidations() {
        let system = small_system(0.0);
        system.read_transaction(&[ObjectId(5)]).unwrap();
        system.update(&[ObjectId(5)]).unwrap();
        system.advance_time(tcache_types::SimDuration::from_secs(1));
        // The cached copy was invalidated, so the next read misses and sees
        // the new version.
        let v = system.read(ObjectId(5)).unwrap();
        assert!(v.version > tcache_types::Version::INITIAL);
        assert!(system.stats().channel.sent >= 1);
    }

    #[test]
    fn multi_cache_system_serves_each_cache_independently() {
        let system = multi_system(&[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(system.cache_count(), 4);
        assert_eq!(
            system.cache_ids().collect::<Vec<_>>(),
            (0..4).map(CacheId).collect::<Vec<_>>()
        );
        let v = system.update(&[ObjectId(1)]).unwrap();
        for id in 0..4u32 {
            let got = system.read_on(CacheId(id), ObjectId(1)).unwrap();
            assert_eq!(got.version, v);
        }
        let stats = system.stats();
        assert_eq!(stats.per_cache.len(), 4);
        // Every channel carried the invalidation.
        for node in &stats.per_cache {
            assert_eq!(node.channel.sent, 1);
            assert_eq!(node.cache.reads, 1);
        }
        // Aggregates sum the per-cache views.
        assert_eq!(stats.cache.reads, 4);
        assert_eq!(stats.channel.sent, 4);
        // Addressing an undeployed cache errors.
        assert_eq!(
            system.read_on(CacheId(9), ObjectId(1)).unwrap_err(),
            TCacheError::UnknownCache(CacheId(9))
        );
    }

    #[test]
    fn reactor_transport_round_trips_and_reports_pipe_stats() {
        let system = SystemBuilder::new()
            .dependency_bound(3)
            .strategy(Strategy::Abort)
            .caches(4)
            .transport(TransportMode::Reactor)
            .seed(7)
            .build();
        assert_eq!(system.transport_mode(), TransportMode::Reactor);
        system.populate((0..20).map(|i| (ObjectId(i), Value::new(0))));
        for id in 0..4u32 {
            system.read_on(CacheId(id), ObjectId(1)).unwrap();
        }
        let v = system.update(&[ObjectId(1), ObjectId(2)]).unwrap();
        system.advance_time(tcache_types::SimDuration::from_secs(1));
        // The reactor applied the invalidations: every cache misses and
        // re-reads the new version.
        for id in 0..4u32 {
            assert_eq!(system.read_on(CacheId(id), ObjectId(1)).unwrap().version, v);
            assert!(system.reactor_applied(CacheId(id)).unwrap() >= 1);
        }
        let stats = system.stats();
        for node in &stats.per_cache {
            assert!(node.pipe.enqueued >= 1, "{}: {:?}", node.id, node.pipe);
            assert_eq!(node.pipe.overflow_dropped(), 0);
        }
        let reactor = system.reactor_stats().expect("reactor mode");
        assert_eq!(reactor.spawned, 4);
        assert!(reactor.wakes > 0);
        assert!(system.quiesce(std::time::Duration::from_secs(1)).unwrap());
        assert_eq!(system.quiesce_timeouts(), 0);
    }

    #[test]
    fn two_tier_fanout_reaches_each_leaf_exactly_once_through_its_parent() {
        use crate::builder::two_tier_parents;
        use crate::transport::DeliveryMode;
        // Caches 0 and 1 are roots; leaves 2/4 subscribe through 0 and
        // leaves 3/5 through 1.
        let system = SystemBuilder::new()
            .caches(6)
            .cache_parents(two_tier_parents(2, 2))
            .transport(TransportMode::Reactor)
            .delivery(DeliveryMode::Modeled)
            .invalidation_delay_millis(0)
            .seed(7)
            .build();
        assert_eq!(system.publisher_fanout(), 2, "DB publishes to roots only");
        assert_eq!(system.cache_parent(CacheId(0)), None);
        assert_eq!(system.cache_parent(CacheId(2)), Some(CacheId(0)));
        assert_eq!(system.cache_parent(CacheId(5)), Some(CacheId(1)));
        system.populate((0..20).map(|i| (ObjectId(i), Value::new(0))));

        system.update(&[ObjectId(1)]).unwrap();
        assert!(system.quiesce(std::time::Duration::from_secs(5)).unwrap());
        let stats = system.stats();
        for node in &stats.per_cache {
            assert_eq!(
                node.delivery.delivered, 1,
                "cache {}: every cache sees the invalidation exactly once",
                node.id
            );
            assert_eq!(node.channel.sent, 1, "cache {}", node.id);
            assert_eq!(node.channel.dropped, 0, "cache {}", node.id);
        }
        assert_eq!(system.relay_overflows(), 0);

        // Severing parent 0 (crash) silences exactly its subtree {2, 4};
        // root 1's subtree keeps receiving.
        system.crash_cache(CacheId(0), system.now()).unwrap();
        system.update(&[ObjectId(2)]).unwrap();
        assert!(system.quiesce(std::time::Duration::from_secs(5)).unwrap());
        let stats = system.stats();
        for node in &stats.per_cache {
            let expected = match node.id.0 {
                0 | 2 | 4 => 1,
                _ => 2,
            };
            assert_eq!(node.delivery.delivered, expected, "cache {}", node.id);
        }
        // Lifecycle counters: the crash is the parent's alone — the leaves
        // themselves never transitioned.
        assert_eq!(
            system.cache(CacheId(0)).unwrap().lifecycle_stats().crashes,
            1
        );
        for leaf in [2u32, 3, 4, 5] {
            assert_eq!(
                system
                    .cache(CacheId(leaf))
                    .unwrap()
                    .lifecycle_stats()
                    .crashes,
                0,
                "leaf {leaf}"
            );
        }

        // Restarting the parent heals the whole subtree.
        system.restart_cache(CacheId(0)).unwrap();
        system.update(&[ObjectId(3)]).unwrap();
        assert!(system.quiesce(std::time::Duration::from_secs(5)).unwrap());
        let stats = system.stats();
        for node in &stats.per_cache {
            let expected = match node.id.0 {
                0 | 2 | 4 => 2,
                _ => 3,
            };
            assert_eq!(node.delivery.delivered, expected, "cache {}", node.id);
        }

        // The flat star at equal leaf count publishes to every cache.
        let star = SystemBuilder::new()
            .caches(6)
            .transport(TransportMode::Reactor)
            .delivery(DeliveryMode::Modeled)
            .invalidation_delay_millis(0)
            .seed(7)
            .build();
        assert_eq!(star.publisher_fanout(), 6);
        assert!(system.publisher_fanout() < star.publisher_fanout());
    }

    #[test]
    #[should_panic(expected = "two-tier fan-out needs the modeled reactor pipeline")]
    fn two_tier_requires_modeled_delivery() {
        let _ = SystemBuilder::new()
            .caches(3)
            .cache_parents(vec![None, Some(CacheId(0)), Some(CacheId(0))])
            .transport(TransportMode::Reactor)
            .build();
    }

    #[test]
    fn threaded_mode_has_no_reactor_surface() {
        let system = small_system(0.0);
        assert_eq!(system.transport_mode(), TransportMode::Threaded);
        assert_eq!(
            system.delivery_mode(),
            crate::transport::DeliveryMode::Clocked
        );
        assert!(system.reactor_stats().is_none());
        assert!(system.reactor_applied(CacheId(0)).is_none());
        // Threaded mode has neither apply tasks to pause nor a reactor to
        // quiesce, and says so instead of silently answering `false`/`true`.
        assert!(matches!(
            system.pause_cache(CacheId(0)),
            Err(TCacheError::UnsupportedTransport { .. })
        ));
        assert!(matches!(
            system.resume_cache(CacheId(0)),
            Err(TCacheError::UnsupportedTransport { .. })
        ));
        assert!(matches!(
            system.crash_cache(CacheId(0), system.now()),
            Err(TCacheError::UnsupportedTransport { .. })
        ));
        assert!(matches!(
            system.quiesce(std::time::Duration::from_millis(1)),
            Err(TCacheError::UnsupportedTransport { .. })
        ));
        assert!(!system.is_cache_severed(CacheId(0)));
        assert!(!system.is_cache_paused(CacheId(0)));
        assert_eq!(system.stats().per_cache[0].pipe, Default::default());
        assert_eq!(system.stats().per_cache[0].delivery, Default::default());
    }

    #[test]
    fn pause_cache_distinguishes_unknown_cache_from_missing_reactor() {
        let system = SystemBuilder::new()
            .caches(2)
            .transport(TransportMode::Reactor)
            .build();
        assert!(system.pause_cache(CacheId(1)).is_ok());
        assert!(system.is_cache_paused(CacheId(1)));
        assert!(system.resume_cache(CacheId(1)).is_ok());
        assert!(!system.is_cache_paused(CacheId(1)));
        assert_eq!(
            system.pause_cache(CacheId(9)),
            Err(TCacheError::UnknownCache(CacheId(9)))
        );
        assert_eq!(
            system.resume_cache(CacheId(9)),
            Err(TCacheError::UnknownCache(CacheId(9)))
        );
    }

    #[test]
    fn pause_and_resume_report_state_errors() {
        let system = SystemBuilder::new()
            .caches(2)
            .transport(TransportMode::Reactor)
            .build();
        // Resuming a never-paused cache is a state error, not a no-op.
        assert_eq!(
            system.resume_cache(CacheId(0)),
            Err(TCacheError::InvalidCacheState {
                cache: CacheId(0),
                operation: "resume",
                state: "running",
            })
        );
        // Double pause is a state error too.
        system.pause_cache(CacheId(0)).unwrap();
        assert_eq!(
            system.pause_cache(CacheId(0)),
            Err(TCacheError::InvalidCacheState {
                cache: CacheId(0),
                operation: "pause",
                state: "paused",
            })
        );
        system.resume_cache(CacheId(0)).unwrap();
        // A crashed cache has no apply loop to pause.
        system.crash_cache(CacheId(0), system.now()).unwrap();
        assert_eq!(
            system.pause_cache(CacheId(0)),
            Err(TCacheError::InvalidCacheState {
                cache: CacheId(0),
                operation: "pause",
                state: "crashed",
            })
        );
        system.restart_cache(CacheId(0)).unwrap();
        assert!(system.pause_cache(CacheId(0)).is_ok());
        system.resume_cache(CacheId(0)).unwrap();
    }

    #[test]
    fn crash_severs_the_link_and_restart_restores_it() {
        let system = SystemBuilder::new()
            .caches(2)
            .transport(TransportMode::Reactor)
            .seed(7)
            .build();
        system.populate((0..20).map(|i| (ObjectId(i), Value::new(0))));
        system.read_on(CacheId(0), ObjectId(1)).unwrap();

        system.crash_cache(CacheId(0), system.now()).unwrap();
        assert!(system.is_cache_severed(CacheId(0)));
        assert!(system.cache(CacheId(0)).unwrap().is_crashed());
        assert!(!system.is_cache_severed(CacheId(1)));

        // Updates while down are discarded at cache 0's link but delivered
        // to cache 1.
        let v = system.update(&[ObjectId(1)]).unwrap();
        system.advance_time(tcache_types::SimDuration::from_secs(1));
        assert_eq!(system.read_on(CacheId(1), ObjectId(1)).unwrap().version, v);

        system.restart_cache(CacheId(0)).unwrap();
        assert!(!system.is_cache_severed(CacheId(0)));
        assert!(!system.cache(CacheId(0)).unwrap().is_crashed());
        // The restarted cold cache reads the current version.
        assert_eq!(system.read_on(CacheId(0), ObjectId(1)).unwrap().version, v);
        assert_eq!(
            system.cache(CacheId(0)).unwrap().lifecycle_stats().crashes,
            1
        );
    }

    #[test]
    fn partition_and_heal_resync_under_gap_resync_policy() {
        let system = SystemBuilder::new()
            .caches(1)
            .transport(TransportMode::Reactor)
            .recovery_policy(tcache_types::RecoveryPolicy::GapResync {
                staleness_budget: tcache_types::SimDuration::from_secs(3600),
            })
            .seed(7)
            .build();
        system.populate((0..20).map(|i| (ObjectId(i), Value::new(0))));
        system.read(ObjectId(1)).unwrap();

        system.partition_cache(CacheId(0), system.now()).unwrap();
        let v = system.update(&[ObjectId(1)]).unwrap();
        system.advance_time(tcache_types::SimDuration::from_secs(1));
        // Partitioned within budget: the stale local copy is still served.
        assert_eq!(
            system.read(ObjectId(1)).unwrap().version,
            tcache_types::Version::INITIAL
        );

        system.heal_cache(CacheId(0)).unwrap();
        // The reconnect replayed the invalidation log: the stale entry is
        // gone and the fresh version is read through.
        assert_eq!(system.read(ObjectId(1)).unwrap().version, v);
        let lifecycle = system.cache(CacheId(0)).unwrap().lifecycle_stats();
        assert_eq!(lifecycle.partitions, 1);
        assert_eq!(lifecycle.reconnects, 1);
        assert_eq!(lifecycle.log_replays, 1);
    }

    #[test]
    fn extra_delay_spikes_apply_on_the_clocked_channel() {
        let system = small_system(0.0);
        system.read_transaction(&[ObjectId(5)]).unwrap();
        // Spike cache 0's delay far beyond the default tick cadence.
        system
            .set_cache_extra_delay(CacheId(0), tcache_types::SimDuration::from_secs(30))
            .unwrap();
        system.update(&[ObjectId(5)]).unwrap();
        system.advance_time(tcache_types::SimDuration::from_secs(1));
        // Still in flight: the spiked invalidation has not arrived.
        assert_eq!(
            system.read(ObjectId(5)).unwrap().version,
            tcache_types::Version::INITIAL
        );
        system.advance_time(tcache_types::SimDuration::from_secs(60));
        assert!(system.read(ObjectId(5)).unwrap().version > tcache_types::Version::INITIAL);
        assert_eq!(
            system.set_cache_extra_delay(CacheId(9), tcache_types::SimDuration::ZERO),
            Err(TCacheError::UnknownCache(CacheId(9)))
        );
    }

    #[test]
    fn heterogeneous_loss_hits_only_the_lossy_cache() {
        // Cache 0 has a perfect link, cache 1 loses everything. After an
        // update, cache 0's stale entry is invalidated while cache 1 keeps
        // serving the old version — per-cache isolation of the loss process.
        let system = multi_system(&[0.0, 1.0]);
        system.read_on(CacheId(0), ObjectId(1)).unwrap();
        system.read_on(CacheId(1), ObjectId(1)).unwrap();
        let v = system.update(&[ObjectId(1)]).unwrap();
        system.advance_time(tcache_types::SimDuration::from_secs(1));
        assert_eq!(system.read_on(CacheId(0), ObjectId(1)).unwrap().version, v);
        assert_eq!(
            system.read_on(CacheId(1), ObjectId(1)).unwrap().version,
            tcache_types::Version::INITIAL,
            "cache 1's invalidation was lost, its entry stays stale"
        );
        let stats = system.stats();
        assert_eq!(stats.per_cache[0].channel.dropped, 0);
        assert_eq!(stats.per_cache[1].channel.delivered, 0);
    }
}
