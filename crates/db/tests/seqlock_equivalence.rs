//! Equivalence and race tests for the optimistic (seqlock) read path.
//!
//! The seqlock store must be *observationally equivalent* to the historical
//! lock-per-read store: the same installs produce the same entries, the
//! same histories and — under concurrency — only version sequences the
//! locked store could also produce (committed snapshots, monotone per
//! object, never torn). Three layers pin that down:
//!
//! 1. a differential property test applying random operation sequences to
//!    both stores and comparing every observable;
//! 2. a property test running concurrent readers against a writer on *both*
//!    stores, checking every observation is a committed snapshot and the
//!    per-object version sequences are monotone (the definition of an
//!    untorn, valid read schedule);
//! 3. an 8-thread stress test against a sequential oracle, plus a
//!    regression test that a reader racing a writer on one object can
//!    never observe a torn `ObjectEntry` (value / version / dependency-list
//!    mismatch).

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tcache_db::{ReadPath, VersionedStore};
use tcache_types::{seeding, DependencyList, ObjectId, TxnId, Value, Version};

const OBJECTS: u64 = 16;

/// Builds the deterministic entry installed as version `v` of `obj`:
/// the value and the dependency list are both functions of `(obj, v)`, so
/// any mix-up between two installs is detectable from a single snapshot.
fn install_payload(obj: u64, v: u64) -> (Value, DependencyList) {
    let value = Value::new(v * 1_000 + obj);
    let mut deps = DependencyList::bounded(1);
    deps.record(ObjectId(obj), Version(v));
    (value, deps)
}

/// Asserts one snapshot is exactly one committed state of `obj`: either the
/// initial populate or an install produced by [`install_payload`].
fn assert_untorn(entry: &tcache_types::ObjectEntry, obj: u64) {
    if entry.version == Version::INITIAL {
        assert_eq!(entry.value.numeric(), 0, "initial value for o{obj}");
        assert!(entry.dependencies.is_empty(), "initial deps for o{obj}");
    } else {
        let v = entry.version.0;
        assert_eq!(
            entry.value.numeric(),
            v * 1_000 + obj,
            "torn entry: o{obj} version {v} carries a foreign value"
        );
        assert_eq!(
            entry.dependencies.version_of(ObjectId(obj)),
            Some(Version(v)),
            "torn entry: o{obj} version {v} carries a foreign dependency list"
        );
    }
}

fn populated(read_path: ReadPath, history: usize) -> VersionedStore {
    let s = VersionedStore::with_read_path(history, read_path);
    for i in 0..OBJECTS {
        s.insert_initial(ObjectId(i), Value::new(0));
    }
    s
}

/// Runs `readers` reader threads over `store` while `writer` (run on the
/// calling thread) installs entries; every snapshot is checked untorn and
/// per-object versions are checked monotone per reader.
fn race(
    store: &Arc<VersionedStore>,
    readers: usize,
    writer: impl FnOnce(&VersionedStore),
) {
    let done = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..readers)
        .map(|r| {
            let store = Arc::clone(store);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut floors = vec![Version::INITIAL; OBJECTS as usize];
                let mut rounds = 0u64;
                while !done.load(Ordering::Relaxed) || rounds < 100 {
                    let obj = (rounds + r as u64) % OBJECTS;
                    let entry = store.get(ObjectId(obj)).expect("populated");
                    assert_untorn(&entry, obj);
                    assert!(
                        entry.version >= floors[obj as usize],
                        "reader {r} saw o{obj} go backwards: {:?} after {:?}",
                        entry.version,
                        floors[obj as usize]
                    );
                    floors[obj as usize] = entry.version;
                    rounds += 1;
                }
                floors
            })
        })
        .collect();
    writer(store);
    done.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("reader panicked (torn or non-monotone read)");
    }
}

proptest! {
    /// Differential property test: the same random operation sequence
    /// applied to the locked and to the optimistic store yields identical
    /// observables, operation by operation and in the final state.
    #[test]
    fn random_ops_match_between_locked_and_optimistic(
        ops in prop::collection::vec((0u32..6, 0u64..OBJECTS + 2, 1u64..500), 1..120),
    ) {
        let locked = populated(ReadPath::Locked, 3);
        let optimistic = populated(ReadPath::Optimistic, 3);
        let mut next_version = 1u64;
        for &(kind, obj, val) in &ops {
            let id = ObjectId(obj);
            match kind {
                0 => {
                    // Install the same new version into both stores.
                    let v = Version(next_version);
                    next_version += 1;
                    let mut deps = DependencyList::bounded(2);
                    deps.record(ObjectId(val % OBJECTS), v);
                    let a = locked.install(id, Value::new(val), v, deps.clone(), TxnId(val));
                    let b = optimistic.install(id, Value::new(val), v, deps, TxnId(val));
                    prop_assert_eq!(a.is_ok(), b.is_ok());
                }
                1 => prop_assert_eq!(locked.get(id), optimistic.get(id)),
                2 => prop_assert_eq!(locked.version_of(id), optimistic.version_of(id)),
                3 => prop_assert_eq!(locked.contains(id), optimistic.contains(id)),
                4 => prop_assert_eq!(locked.history(id), optimistic.history(id)),
                _ => {
                    let v = Version(val % next_version);
                    prop_assert_eq!(
                        locked.read_version(id, v),
                        optimistic.read_version(id, v)
                    );
                }
            }
        }
        // Final observable state is identical.
        prop_assert_eq!(locked.len(), optimistic.len());
        prop_assert_eq!(locked.footprint_bytes(), optimistic.footprint_bytes());
        let mut a = locked.object_ids();
        let mut b = optimistic.object_ids();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        for i in 0..OBJECTS {
            prop_assert_eq!(locked.get(ObjectId(i)), optimistic.get(ObjectId(i)));
            prop_assert_eq!(locked.history(ObjectId(i)), optimistic.history(ObjectId(i)));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Concurrent readers against a writer, on both stores: every snapshot
    /// must be a committed state (untorn) and every reader's per-object
    /// version sequence must be monotone — i.e. the seqlock store admits
    /// exactly the observable version sequences of the lock-based store.
    /// Both stores then agree on the final state.
    #[test]
    fn concurrent_version_sequences_are_valid_on_both_paths(
        seed in 0u64..1_000_000,
        installs in 200u64..600,
    ) {
        let mut finals = Vec::new();
        for read_path in [ReadPath::Locked, ReadPath::Optimistic] {
            let store = Arc::new(populated(read_path, 0));
            race(&store, 3, |store| {
                for i in 0..installs {
                    let obj = seeding::derive_stream_seed(seed, i) % OBJECTS;
                    let v = i + 1;
                    let (value, deps) = install_payload(obj, v);
                    store
                        .install(ObjectId(obj), value, Version(v), deps, TxnId(v))
                        .expect("populated");
                }
            });
            finals.push(
                (0..OBJECTS)
                    .map(|i| store.get(ObjectId(i)).expect("populated"))
                    .collect::<Vec<_>>(),
            );
        }
        prop_assert_eq!(&finals[0], &finals[1], "both paths end in the same state");
    }
}

/// 8 threads (2 writers over disjoint object halves, 6 readers) against a
/// sequential oracle: the final store state must equal a single-threaded
/// replay of both writers' install sequences, and no reader may ever see a
/// torn or non-monotone snapshot (checked inside [`race`]'s readers).
#[test]
fn eight_thread_stress_matches_sequential_oracle() {
    const INSTALLS_PER_WRITER: u64 = 4_000;
    let store = Arc::new(populated(ReadPath::Optimistic, 0));

    // Writer w installs versions into objects [w * OBJECTS/2, (w+1) * OBJECTS/2),
    // so installs of one object are serialized (as the 2PC lock table
    // guarantees in the real database) while buckets still see concurrent
    // writers.
    let writer = |store: Arc<VersionedStore>, w: u64| {
        std::thread::spawn(move || {
            let half = OBJECTS / 2;
            for i in 0..INSTALLS_PER_WRITER {
                let obj = w * half + i % half;
                let v = i + 1;
                let (value, deps) = install_payload(obj, v);
                store
                    .install(ObjectId(obj), value, Version(v), deps, TxnId(v))
                    .expect("populated");
            }
        })
    };

    race(&store, 6, |store_ref| {
        let w0 = writer(Arc::clone(&store), 0);
        let w1 = writer(Arc::clone(&store), 1);
        w0.join().expect("writer 0");
        w1.join().expect("writer 1");
        let _ = store_ref; // writers share the same store through the Arc
    });

    // Sequential oracle: replay both writers' sequences single-threaded.
    let oracle = populated(ReadPath::Locked, 0);
    for w in 0..2u64 {
        let half = OBJECTS / 2;
        for i in 0..INSTALLS_PER_WRITER {
            let obj = w * half + i % half;
            let v = i + 1;
            let (value, deps) = install_payload(obj, v);
            oracle
                .install(ObjectId(obj), value, Version(v), deps, TxnId(v))
                .unwrap();
        }
    }
    for i in 0..OBJECTS {
        assert_eq!(
            store.get(ObjectId(i)).unwrap(),
            oracle.get(ObjectId(i)).unwrap(),
            "object {i} diverged from the sequential oracle"
        );
    }

    let stats = store.read_path_stats();
    assert!(stats.optimistic_hits > 0, "readers used the optimistic path");
    assert_eq!(stats.locked_reads, 0, "no blocking reads in optimistic mode");
}

/// Regression test for the seqlock path's core guarantee: a reader racing
/// a writer on the *same* object never observes a torn `ObjectEntry` — the
/// value, version and dependency list always belong to one single install.
#[test]
fn reader_racing_writer_never_observes_torn_entry() {
    const INSTALLS: u64 = 30_000;
    let store = Arc::new(VersionedStore::new(0));
    store.insert_initial(ObjectId(0), Value::new(0));

    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let store = Arc::clone(&store);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut floor = Version::INITIAL;
                let mut snapshots = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let entry = store.get(ObjectId(0)).expect("populated");
                    // Value and dependency list must match the version: a
                    // torn read mixing install i and install i+1 fails here.
                    assert_untorn(&entry, 0);
                    assert!(entry.version >= floor, "version went backwards");
                    floor = entry.version;
                    snapshots += 1;
                }
                snapshots
            })
        })
        .collect();

    for v in 1..=INSTALLS {
        let (value, deps) = install_payload(0, v);
        store
            .install(ObjectId(0), value, Version(v), deps, TxnId(v))
            .unwrap();
    }
    done.store(true, Ordering::Relaxed);
    let total: u64 = readers.into_iter().map(|h| h.join().expect("no torn read")).sum();
    assert!(total > 0, "readers actually raced the writer");
    assert_eq!(store.get(ObjectId(0)).unwrap().version, Version(INSTALLS));

    let stats = store.read_path_stats();
    assert_eq!(
        stats.optimistic_hits + stats.lock_fallbacks,
        total + 1, // + the final assertion's read above
        "every snapshot is classified exactly once"
    );
}
