//! Per-object lock table with two-phase locking.
//!
//! The backend database of the paper is a transactional store; this lock
//! table provides the concurrency control for update transactions. It
//! implements strict two-phase locking with a **no-wait** policy: a
//! transaction that cannot acquire a lock immediately is aborted
//! (deadlock avoidance without a waits-for graph).
//!
//! Since the store grew its optimistic read path (see [`crate::store`]),
//! the shared mode is only exercised by [`ReadPath::Locked`] deployments:
//! optimistic readers validate their snapshots against the store's bucket
//! sequences instead of registering here, so the table's normal population
//! is exclusively write locks held between prepare and commit/abort.
//!
//! [`ReadPath::Locked`]: crate::store::ReadPath::Locked

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use tcache_types::{ConflictReason, ObjectId, TCacheError, TCacheResult, TxnId};

/// The mode in which a lock is requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

#[derive(Debug, Default)]
struct ObjectLock {
    /// Transactions holding a shared lock.
    shared: HashSet<TxnId>,
    /// Transaction holding the exclusive lock, if any.
    exclusive: Option<TxnId>,
}

impl ObjectLock {
    fn is_free(&self) -> bool {
        self.shared.is_empty() && self.exclusive.is_none()
    }

    fn can_grant(&self, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => match self.exclusive {
                Some(holder) => holder == txn,
                None => true,
            },
            LockMode::Exclusive => {
                let only_self_shared =
                    self.shared.is_empty() || (self.shared.len() == 1 && self.shared.contains(&txn));
                let exclusive_ok = self.exclusive.is_none_or(|holder| holder == txn);
                only_self_shared && exclusive_ok
            }
        }
    }

    fn grant(&mut self, txn: TxnId, mode: LockMode) {
        match mode {
            LockMode::Shared => {
                if self.exclusive != Some(txn) {
                    self.shared.insert(txn);
                }
            }
            LockMode::Exclusive => {
                self.shared.remove(&txn);
                self.exclusive = Some(txn);
            }
        }
    }

    fn release(&mut self, txn: TxnId) {
        self.shared.remove(&txn);
        if self.exclusive == Some(txn) {
            self.exclusive = None;
        }
    }
}

/// A lock table keyed by object id.
#[derive(Debug, Default)]
pub struct LockTable {
    locks: Mutex<HashMap<ObjectId, ObjectLock>>,
}

impl LockTable {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Attempts to acquire `mode` locks on every object in `objects` for
    /// `txn`, atomically. Either all locks are granted or none are
    /// (no partial acquisition), and on failure the transaction is expected
    /// to abort (no-wait policy).
    ///
    /// Lock upgrades (shared → exclusive by the same transaction) are
    /// allowed when no other transaction holds the shared lock.
    ///
    /// # Errors
    /// Returns [`TCacheError::UpdateAborted`] with
    /// [`ConflictReason::LockConflict`] if any lock is unavailable.
    pub fn try_lock_all(
        &self,
        txn: TxnId,
        objects: &[ObjectId],
        mode: LockMode,
    ) -> TCacheResult<()> {
        let mut table = self.locks.lock();
        // First pass: check every lock can be granted.
        for &o in objects {
            if let Some(lock) = table.get(&o) {
                if !lock.can_grant(txn, mode) {
                    return Err(TCacheError::UpdateAborted {
                        txn,
                        reason: ConflictReason::LockConflict,
                    });
                }
            }
        }
        // Second pass: grant them all.
        for &o in objects {
            table.entry(o).or_default().grant(txn, mode);
        }
        Ok(())
    }

    /// Releases every lock held by `txn`.
    pub fn release_all(&self, txn: TxnId) {
        let mut table = self.locks.lock();
        table.retain(|_, lock| {
            lock.release(txn);
            !lock.is_free()
        });
    }

    /// Returns `true` if `txn` currently holds a lock on `object` in a mode
    /// at least as strong as `mode`.
    pub fn holds(&self, txn: TxnId, object: ObjectId, mode: LockMode) -> bool {
        let table = self.locks.lock();
        match table.get(&object) {
            None => false,
            Some(lock) => match mode {
                LockMode::Shared => {
                    lock.shared.contains(&txn) || lock.exclusive == Some(txn)
                }
                LockMode::Exclusive => lock.exclusive == Some(txn),
            },
        }
    }

    /// Number of objects with at least one lock held (diagnostics).
    pub fn locked_objects(&self) -> usize {
        self.locks.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn objs(ids: &[u64]) -> Vec<ObjectId> {
        ids.iter().map(|&i| ObjectId(i)).collect()
    }

    #[test]
    fn exclusive_locks_conflict() {
        let t = LockTable::new();
        t.try_lock_all(TxnId(1), &objs(&[1, 2]), LockMode::Exclusive)
            .unwrap();
        let err = t
            .try_lock_all(TxnId(2), &objs(&[2, 3]), LockMode::Exclusive)
            .unwrap_err();
        assert!(matches!(err, TCacheError::UpdateAborted { txn: TxnId(2), .. }));
        // Non-overlapping set is fine.
        t.try_lock_all(TxnId(2), &objs(&[3, 4]), LockMode::Exclusive)
            .unwrap();
    }

    #[test]
    fn shared_locks_are_compatible() {
        let t = LockTable::new();
        t.try_lock_all(TxnId(1), &objs(&[1]), LockMode::Shared).unwrap();
        t.try_lock_all(TxnId(2), &objs(&[1]), LockMode::Shared).unwrap();
        assert!(t.holds(TxnId(1), ObjectId(1), LockMode::Shared));
        assert!(t.holds(TxnId(2), ObjectId(1), LockMode::Shared));
        // Exclusive now conflicts with the two shared holders.
        assert!(t
            .try_lock_all(TxnId(3), &objs(&[1]), LockMode::Exclusive)
            .is_err());
    }

    #[test]
    fn failed_acquisition_grants_nothing() {
        let t = LockTable::new();
        t.try_lock_all(TxnId(1), &objs(&[2]), LockMode::Exclusive).unwrap();
        // Txn 2 wants objects 1 and 2; 2 is taken, so 1 must not be locked either.
        assert!(t
            .try_lock_all(TxnId(2), &objs(&[1, 2]), LockMode::Exclusive)
            .is_err());
        assert!(!t.holds(TxnId(2), ObjectId(1), LockMode::Shared));
        assert!(t
            .try_lock_all(TxnId(3), &objs(&[1]), LockMode::Exclusive)
            .is_ok());
    }

    #[test]
    fn lock_upgrade_by_same_transaction() {
        let t = LockTable::new();
        t.try_lock_all(TxnId(1), &objs(&[1]), LockMode::Shared).unwrap();
        t.try_lock_all(TxnId(1), &objs(&[1]), LockMode::Exclusive).unwrap();
        assert!(t.holds(TxnId(1), ObjectId(1), LockMode::Exclusive));
        // Another transaction's shared lock blocks the upgrade.
        t.try_lock_all(TxnId(2), &objs(&[2]), LockMode::Shared).unwrap();
        t.try_lock_all(TxnId(3), &objs(&[2]), LockMode::Shared).unwrap();
        assert!(t
            .try_lock_all(TxnId(2), &objs(&[2]), LockMode::Exclusive)
            .is_err());
    }

    #[test]
    fn release_frees_locks() {
        let t = LockTable::new();
        t.try_lock_all(TxnId(1), &objs(&[1, 2, 3]), LockMode::Exclusive)
            .unwrap();
        assert_eq!(t.locked_objects(), 3);
        t.release_all(TxnId(1));
        assert_eq!(t.locked_objects(), 0);
        t.try_lock_all(TxnId(2), &objs(&[1, 2, 3]), LockMode::Exclusive)
            .unwrap();
    }

    #[test]
    fn exclusive_holder_can_reacquire_shared() {
        let t = LockTable::new();
        t.try_lock_all(TxnId(1), &objs(&[1]), LockMode::Exclusive).unwrap();
        t.try_lock_all(TxnId(1), &objs(&[1]), LockMode::Shared).unwrap();
        assert!(t.holds(TxnId(1), ObjectId(1), LockMode::Exclusive));
        // Other readers still conflict.
        assert!(t
            .try_lock_all(TxnId(2), &objs(&[1]), LockMode::Shared)
            .is_err());
    }

    #[test]
    fn holds_on_unknown_object_is_false() {
        let t = LockTable::new();
        assert!(!t.holds(TxnId(1), ObjectId(1), LockMode::Shared));
    }
}
