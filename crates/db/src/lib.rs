//! The backend transactional key-value store of the T-Cache reproduction.
//!
//! The paper's experimental setup uses "a single database \[that\] implements a
//! transactional key-value store with two-phase commit" (§IV). This crate
//! provides that substrate, built from scratch:
//!
//! * [`store`] — the versioned object store (latest version + dependency
//!   list per object) with an optional multi-version history for auditing;
//!   readers snapshot entries on a seqlock-validated optimistic path
//!   ([`ReadPath::Optimistic`], the default) that never blocks behind
//!   writers, with the historical lock-per-read layout retained as
//!   [`ReadPath::Locked`] for comparison;
//! * [`locks`] — a per-object lock table with two-phase locking and no-wait
//!   deadlock avoidance;
//! * [`shard`] / [`twopc`] — hash-sharded participants and the two-phase
//!   commit coordinator that spans them;
//! * [`version_clock`] — transaction version assignment (a transaction's
//!   version is larger than the version of every object it accessed);
//! * [`dependency_update`] — the commit-time dependency-list aggregation and
//!   LRU pruning of §III-A;
//! * [`invalidation`] — invalidation records published after every update
//!   transaction, to be delivered (unreliably) to caches;
//! * [`publisher`] — the per-cache upcall registry fanning each committed
//!   update's invalidations out to every registered cache (§IV);
//! * [`log`] — the bounded invalidation log that stamps each published
//!   invalidation with a stream sequence number and replays the suffix a
//!   recovering cache missed (or reports truncation, forcing a snapshot
//!   resync);
//! * [`database`] — the [`Database`] façade combining all of the above.
//!
//! # Example
//!
//! ```
//! use tcache_db::database::{Database, DatabaseConfig};
//! use tcache_types::{AccessSet, ObjectId, TxnId, Value};
//!
//! let db = Database::new(DatabaseConfig::default());
//! db.populate((0..10).map(|i| (ObjectId(i), Value::new(0))));
//!
//! let access: AccessSet = vec![1u64, 2, 3].into();
//! let commit = db.execute_update(TxnId(1), &access).expect("commit");
//! assert_eq!(commit.written.len(), 3);
//! let entry = db.read_entry(ObjectId(1)).expect("entry");
//! assert_eq!(entry.version, commit.version);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod database;
pub mod dependency_update;
pub mod invalidation;
pub mod locks;
pub mod log;
pub mod publisher;
pub mod shard;
pub mod stats;
pub mod store;
pub mod twopc;
pub mod version_clock;

pub use database::{Database, DatabaseConfig, UpdateCommit};
pub use invalidation::{Invalidation, InvalidationBatch};
pub use log::{InvalidationLog, InvalidationReplay};
pub use publisher::{
    InvalidationPublisher, InvalidationSink, PublishStats, ReportingSink, SinkReport,
};
pub use stats::DbStats;
pub use store::{
    HistoricalVersion, ReadPath, ReadPathStatsSnapshot, VersionedStore, BUCKETS,
    MAX_OPTIMISTIC_ATTEMPTS,
};
