//! The versioned object store.
//!
//! Stores, for every object, its latest value, version and dependency list
//! (§III-A), plus an optional bounded multi-version history used by audits
//! and tests (the protocol itself only ever needs the latest version).

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use tcache_types::{
    DependencyList, ObjectEntry, ObjectId, TCacheError, TCacheResult, TxnId, Value, Version,
};

/// One historical version of an object, retained for auditing.
///
/// The dependency list is shared (`Arc`) with the live entry that installed
/// it, so keeping history costs no dependency-list copies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoricalVersion {
    /// The version installed.
    pub version: Version,
    /// The value installed.
    pub value: Value,
    /// The dependency list installed with it.
    pub dependencies: Arc<DependencyList>,
    /// The transaction that installed it, if any (`None` for the initial
    /// populate).
    pub installed_by: Option<TxnId>,
}

/// Thread-safe versioned object store.
///
/// All mutating operations take `&self`; the store uses a [`RwLock`] around
/// its map so it can be shared between the database façade, the shards and
/// the live-mode threads.
#[derive(Debug)]
pub struct VersionedStore {
    objects: RwLock<HashMap<ObjectId, ObjectEntry>>,
    history: RwLock<HashMap<ObjectId, Vec<HistoricalVersion>>>,
    /// How many historical versions to retain per object (0 disables the
    /// history entirely).
    history_depth: usize,
}

impl VersionedStore {
    /// Creates an empty store that keeps `history_depth` past versions per
    /// object for auditing.
    pub fn new(history_depth: usize) -> Self {
        VersionedStore {
            objects: RwLock::new(HashMap::new()),
            history: RwLock::new(HashMap::new()),
            history_depth,
        }
    }

    /// Inserts an object at [`Version::INITIAL`] with an empty dependency
    /// list, replacing any previous entry.
    pub fn insert_initial(&self, id: ObjectId, value: Value) {
        let entry = ObjectEntry::initial(id, value.clone());
        let dependencies = Arc::clone(&entry.dependencies);
        self.objects.write().insert(id, entry);
        if self.history_depth > 0 {
            self.history.write().insert(
                id,
                vec![HistoricalVersion {
                    version: Version::INITIAL,
                    value,
                    dependencies,
                    installed_by: None,
                }],
            );
        }
    }

    /// Returns a copy of the current entry for `id`.
    ///
    /// The copy is cheap: the value blob and the dependency list are shared
    /// by reference count with the stored entry.
    pub fn get(&self, id: ObjectId) -> TCacheResult<ObjectEntry> {
        self.objects
            .read()
            .get(&id)
            .cloned()
            .ok_or(TCacheError::UnknownObject(id))
    }

    /// Returns the current version of `id` without copying the value.
    pub fn version_of(&self, id: ObjectId) -> TCacheResult<Version> {
        self.objects
            .read()
            .get(&id)
            .map(|e| e.version)
            .ok_or(TCacheError::UnknownObject(id))
    }

    /// Returns `true` if the object exists.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.objects.read().contains_key(&id)
    }

    /// Number of objects stored.
    pub fn len(&self) -> usize {
        self.objects.read().len()
    }

    /// Returns `true` if the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.read().is_empty()
    }

    /// Installs a new version of an object (value, version and dependency
    /// list), recording the previous version into the history.
    ///
    /// # Errors
    /// Returns [`TCacheError::UnknownObject`] if the object was never
    /// populated; committed writes may only touch existing objects in this
    /// reproduction (the workloads never insert brand-new objects
    /// mid-experiment).
    pub fn install(
        &self,
        id: ObjectId,
        value: Value,
        version: Version,
        dependencies: impl Into<Arc<DependencyList>>,
        installed_by: TxnId,
    ) -> TCacheResult<()> {
        let dependencies = dependencies.into();
        let mut objects = self.objects.write();
        let entry = objects
            .get_mut(&id)
            .ok_or(TCacheError::UnknownObject(id))?;
        entry.value = value.clone();
        entry.version = version;
        entry.dependencies = Arc::clone(&dependencies);
        drop(objects);

        if self.history_depth > 0 {
            let mut history = self.history.write();
            let versions = history.entry(id).or_default();
            versions.push(HistoricalVersion {
                version,
                value,
                dependencies,
                installed_by: Some(installed_by),
            });
            if versions.len() > self.history_depth {
                let excess = versions.len() - self.history_depth;
                versions.drain(0..excess);
            }
        }
        Ok(())
    }

    /// Returns the retained history of an object (oldest first). Empty if
    /// history is disabled or the object is unknown.
    pub fn history(&self, id: ObjectId) -> Vec<HistoricalVersion> {
        self.history
            .read()
            .get(&id)
            .cloned()
            .unwrap_or_default()
    }

    /// All object ids currently stored (in unspecified order).
    pub fn object_ids(&self) -> Vec<ObjectId> {
        self.objects.read().keys().copied().collect()
    }

    /// Total approximate memory footprint of all entries, in bytes; used to
    /// report the storage overhead of dependency lists.
    pub fn footprint_bytes(&self) -> usize {
        self.objects.read().values().map(ObjectEntry::size_bytes).sum()
    }
}

impl Default for VersionedStore {
    fn default() -> Self {
        VersionedStore::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(n: u64, history: usize) -> VersionedStore {
        let s = VersionedStore::new(history);
        for i in 0..n {
            s.insert_initial(ObjectId(i), Value::new(0));
        }
        s
    }

    #[test]
    fn populate_and_get() {
        let s = store_with(5, 0);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert!(s.contains(ObjectId(3)));
        assert!(!s.contains(ObjectId(99)));
        let e = s.get(ObjectId(3)).unwrap();
        assert_eq!(e.version, Version::INITIAL);
        assert!(e.dependencies.is_empty());
        assert_eq!(s.version_of(ObjectId(3)).unwrap(), Version::INITIAL);
        assert_eq!(s.object_ids().len(), 5);
    }

    #[test]
    fn unknown_object_errors() {
        let s = store_with(1, 0);
        assert_eq!(
            s.get(ObjectId(9)).unwrap_err(),
            TCacheError::UnknownObject(ObjectId(9))
        );
        assert!(s.version_of(ObjectId(9)).is_err());
        assert!(s
            .install(
                ObjectId(9),
                Value::new(1),
                Version(1),
                DependencyList::bounded(1),
                TxnId(1)
            )
            .is_err());
    }

    #[test]
    fn install_replaces_value_version_and_deps() {
        let s = store_with(2, 0);
        let mut deps = DependencyList::bounded(3);
        deps.record(ObjectId(1), Version(7));
        s.install(ObjectId(0), Value::new(42), Version(7), deps.clone(), TxnId(1))
            .unwrap();
        let e = s.get(ObjectId(0)).unwrap();
        assert_eq!(e.value.numeric(), 42);
        assert_eq!(e.version, Version(7));
        assert_eq!(*e.dependencies, deps);
    }

    #[test]
    fn history_is_recorded_and_bounded() {
        let s = store_with(1, 3);
        for v in 1..=5u64 {
            s.install(
                ObjectId(0),
                Value::new(v),
                Version(v),
                DependencyList::bounded(1),
                TxnId(v),
            )
            .unwrap();
        }
        let h = s.history(ObjectId(0));
        assert_eq!(h.len(), 3, "history is trimmed to its depth");
        assert_eq!(h.last().unwrap().version, Version(5));
        assert_eq!(h.first().unwrap().version, Version(3));
        assert_eq!(h.last().unwrap().installed_by, Some(TxnId(5)));
    }

    #[test]
    fn history_disabled_returns_empty() {
        let s = store_with(1, 0);
        s.install(
            ObjectId(0),
            Value::new(1),
            Version(1),
            DependencyList::bounded(1),
            TxnId(1),
        )
        .unwrap();
        assert!(s.history(ObjectId(0)).is_empty());
    }

    #[test]
    fn footprint_grows_with_dependencies() {
        let s = store_with(1, 0);
        let before = s.footprint_bytes();
        let mut deps = DependencyList::bounded(5);
        for i in 0..5 {
            deps.record(ObjectId(i), Version(i));
        }
        s.install(ObjectId(0), Value::new(0), Version(1), deps, TxnId(1))
            .unwrap();
        assert!(s.footprint_bytes() > before);
    }

    #[test]
    fn default_store_is_empty() {
        let s = VersionedStore::default();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
