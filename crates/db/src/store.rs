//! The versioned object store, with an optimistic (seqlock) read path.
//!
//! Stores, for every object, its latest value, version and dependency list
//! (§III-A), plus an optional bounded multi-version history used by audits
//! and tests (the protocol itself only ever needs the latest version).
//!
//! # Read-path concurrency
//!
//! The store serves every cache miss and every update-transaction read, so
//! its read path sits directly on the end-to-end latency of the system.
//! Two read paths are available, selected by [`ReadPath`] at construction:
//!
//! * [`ReadPath::Optimistic`] (the default) — the object space is split
//!   over [`BUCKETS`] buckets, each guarded by a per-bucket **sequence
//!   counter** (seqlock-style) next to its lock. Writers bump the sequence
//!   to an odd value before mutating and back to even after, under the
//!   bucket's exclusive lock. Readers snapshot entries *without blocking*:
//!   they check the sequence (odd means a writer is inside the critical
//!   section — back off without touching the lock's cache line), take the
//!   bucket's read side only if it is immediately available (`try_read`,
//!   never sleeping behind a writer), and copy the entry (a couple of
//!   refcount bumps). A reader retries only when a writer holds the
//!   bucket; after [`MAX_OPTIMISTIC_ATTEMPTS`] such collisions it falls
//!   back to the blocking lock, so progress is guaranteed even under a
//!   write storm. Keeping objects and history in one bucket under one
//!   guard makes every snapshot coherent across both maps.
//! * [`ReadPath::Locked`] — the pre-seqlock layout, kept as the comparison
//!   baseline (see `bench_hotpath`'s `db_read_path` sweep) and as a
//!   conservative fallback: a single bucket whose `RwLock` every read
//!   acquires, exactly the historical lock-per-read behaviour.
//!
//! A design note on what the sequence does and does not do here. In a
//! classical seqlock the data is read unsynchronized, so the sequence
//! re-check is what rules out torn reads. Safe Rust cannot copy
//! `Arc`-carrying entries outside any synchronization (a concurrently
//! dropped allocation could be resurrected — that needs epoch/hazard
//! reclamation machinery), so the optimistic path copies under a
//! *non-blocking* read guard instead: coherence comes from the guard, and
//! a successful `try_read` snapshot is never discarded. The sequence
//! provides the two things the guard cannot: a writer-activity signal
//! readers poll without contending on the lock word, and race telemetry —
//! a sequence that moved across a snapshot means a writer committed while
//! the reader was copying, counted in
//! [`ReadPathStatsSnapshot::optimistic_races`].
//!
//! Writers are unchanged in either mode: installs take the bucket's
//! exclusive lock (they are additionally serialized per object by the
//! two-phase-commit lock table in [`crate::locks`]). What the optimistic
//! path removes is the reader's *blocking* lock acquisition and (via
//! [`crate::shard::Shard`]) the lock-table traffic — the same
//! read-then-validate shape that TransEdge uses to scale edge reads
//! without coordination, at bucket rather than object granularity.
//!
//! Every read is classified in [`ReadPathStatsSnapshot`]: optimistic hits,
//! retries, races and lock fallbacks (or plain locked reads in
//! [`ReadPath::Locked`] mode), surfaced through `DbStats` so experiments
//! can report how often readers actually collided with writers.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tcache_types::{
    seeding, DependencyList, ObjectEntry, ObjectId, TCacheError, TCacheResult, TxnId, Value,
    Version,
};

/// Number of seqlock buckets the optimistic store splits the object space
/// over (a power of two; the bucket of an object is a splitmix64 hash of
/// its id, so densely numbered and shard-strided object ids spread evenly).
pub const BUCKETS: usize = 32;

/// How many optimistic snapshot attempts a reader makes before falling back
/// to the blocking bucket lock.
pub const MAX_OPTIMISTIC_ATTEMPTS: u32 = 8;

/// Which read path [`VersionedStore`] serves snapshots on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPath {
    /// Lock-per-read over a single bucket: the historical layout, kept as
    /// the measured baseline and conservative fallback.
    Locked,
    /// Seqlock-validated non-blocking reads over [`BUCKETS`] buckets with
    /// bounded retries and a lock fallback (the default).
    #[default]
    Optimistic,
}

/// One historical version of an object, retained for auditing.
///
/// The dependency list is shared (`Arc`) with the live entry that installed
/// it, so keeping history costs no dependency-list copies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoricalVersion {
    /// The version installed.
    pub version: Version,
    /// The value installed.
    pub value: Value,
    /// The dependency list installed with it.
    pub dependencies: Arc<DependencyList>,
    /// The transaction that installed it, if any (`None` for the initial
    /// populate).
    pub installed_by: Option<TxnId>,
}

/// Read-path counters, all atomics so readers record them without locks.
#[derive(Debug, Default)]
struct ReadPathStats {
    optimistic_hits: AtomicU64,
    optimistic_retries: AtomicU64,
    optimistic_races: AtomicU64,
    lock_fallbacks: AtomicU64,
    locked_reads: AtomicU64,
}

/// A point-in-time copy of the store's read-path counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReadPathStatsSnapshot {
    /// Snapshots served optimistically (non-blocking read, no fallback).
    pub optimistic_hits: u64,
    /// Attempts backed off because a writer held the bucket (sequence odd
    /// or `try_read` refused); each hit or fallback may have been preceded
    /// by several retries.
    pub optimistic_retries: u64,
    /// Snapshots across which the bucket sequence moved — a writer
    /// committed while the reader was copying. The snapshot itself is
    /// still coherent (it was taken under the read guard); this counts how
    /// often readers and writers genuinely overlapped.
    pub optimistic_races: u64,
    /// Reads that exhausted [`MAX_OPTIMISTIC_ATTEMPTS`] and took the
    /// blocking bucket lock.
    pub lock_fallbacks: u64,
    /// Reads served under the blocking lock in [`ReadPath::Locked`] mode.
    pub locked_reads: u64,
}

impl ReadPathStatsSnapshot {
    /// Merges another snapshot into this one (summing every counter);
    /// used to aggregate per-shard stores into database-wide totals.
    pub fn merge(&mut self, other: ReadPathStatsSnapshot) {
        self.optimistic_hits += other.optimistic_hits;
        self.optimistic_retries += other.optimistic_retries;
        self.optimistic_races += other.optimistic_races;
        self.lock_fallbacks += other.lock_fallbacks;
        self.locked_reads += other.locked_reads;
    }
}

impl ReadPathStats {
    fn snapshot(&self) -> ReadPathStatsSnapshot {
        ReadPathStatsSnapshot {
            optimistic_hits: self.optimistic_hits.load(Ordering::Relaxed),
            optimistic_retries: self.optimistic_retries.load(Ordering::Relaxed),
            optimistic_races: self.optimistic_races.load(Ordering::Relaxed),
            lock_fallbacks: self.lock_fallbacks.load(Ordering::Relaxed),
            locked_reads: self.locked_reads.load(Ordering::Relaxed),
        }
    }
}

/// The data of one bucket: the live entries plus their retained history,
/// under one lock (and one sequence) so a snapshot covering both maps is
/// coherent.
#[derive(Debug, Default)]
struct BucketData {
    objects: HashMap<ObjectId, ObjectEntry>,
    history: HashMap<ObjectId, Vec<HistoricalVersion>>,
}

/// One seqlock bucket: the sequence counter is even while the data is
/// stable and odd while a writer is inside the critical section.
#[derive(Debug, Default)]
struct Bucket {
    seq: AtomicU64,
    data: RwLock<BucketData>,
}

impl Bucket {
    /// Runs `op` on a coherent snapshot of the bucket without ever
    /// blocking behind a writer; returns `None` if a writer holds the
    /// bucket (sequence odd, or the read side not immediately available).
    ///
    /// On success the second element reports whether the sequence moved
    /// across the snapshot — a writer committed while `op` ran. The
    /// snapshot is coherent regardless (it was taken under the read
    /// guard); the movement is surfaced as race telemetry only.
    fn try_optimistic<T>(&self, op: &impl Fn(&BucketData) -> T) -> Option<(T, bool)> {
        let before = self.seq.load(Ordering::Acquire);
        if before & 1 == 1 {
            // A writer is inside the critical section: back off without
            // contending on the lock word.
            return None;
        }
        let guard = self.data.try_read()?;
        let out = op(&guard);
        drop(guard);
        let raced = self.seq.load(Ordering::Acquire) != before;
        Some((out, raced))
    }
}

/// Thread-safe versioned object store.
///
/// All mutating operations take `&self`; the store shards its maps over
/// seqlock buckets (see the module docs) so it can be shared between the
/// database façade, the shards and the live-mode threads, with readers
/// that never block behind writers on the default [`ReadPath::Optimistic`].
#[derive(Debug)]
pub struct VersionedStore {
    buckets: Box<[Bucket]>,
    /// How many historical versions to retain per object (0 disables the
    /// history entirely).
    history_depth: usize,
    read_path: ReadPath,
    stats: ReadPathStats,
}

impl VersionedStore {
    /// Creates an empty store that keeps `history_depth` past versions per
    /// object for auditing, on the default [`ReadPath::Optimistic`].
    pub fn new(history_depth: usize) -> Self {
        VersionedStore::with_read_path(history_depth, ReadPath::default())
    }

    /// Creates an empty store on an explicit read path.
    /// [`ReadPath::Locked`] reproduces the historical single-lock layout
    /// (one bucket, blocking reads); [`ReadPath::Optimistic`] is the
    /// bucketed seqlock layout.
    pub fn with_read_path(history_depth: usize, read_path: ReadPath) -> Self {
        let buckets = match read_path {
            ReadPath::Locked => 1,
            ReadPath::Optimistic => BUCKETS,
        };
        VersionedStore {
            buckets: (0..buckets).map(|_| Bucket::default()).collect(),
            history_depth,
            read_path,
            stats: ReadPathStats::default(),
        }
    }

    /// The read path this store serves snapshots on.
    pub fn read_path(&self) -> ReadPath {
        self.read_path
    }

    /// A snapshot of the read-path counters (optimistic hits, retries,
    /// fallbacks, locked reads).
    pub fn read_path_stats(&self) -> ReadPathStatsSnapshot {
        self.stats.snapshot()
    }

    fn bucket(&self, id: ObjectId) -> &Bucket {
        // splitmix64 mix so shard-strided ids (shard routing is `id % n`)
        // still spread over all buckets.
        let h = seeding::derive_stream_seed(id.as_u64(), 0);
        &self.buckets[(h as usize) & (self.buckets.len() - 1)]
    }

    /// Serves a read of `id`'s bucket on the configured path: optimistic
    /// snapshot-validate-retry with a bounded-lock fallback, or a plain
    /// blocking read in [`ReadPath::Locked`] mode.
    ///
    /// `op` must be a pure read: on the optimistic path it can run several
    /// times (discarded attempts) before one result is returned.
    fn read_with<T>(&self, id: ObjectId, op: impl Fn(&BucketData) -> T) -> T {
        let bucket = self.bucket(id);
        if self.read_path == ReadPath::Optimistic {
            for _ in 0..MAX_OPTIMISTIC_ATTEMPTS {
                if let Some((out, raced)) = bucket.try_optimistic(&op) {
                    self.stats.optimistic_hits.fetch_add(1, Ordering::Relaxed);
                    if raced {
                        self.stats.optimistic_races.fetch_add(1, Ordering::Relaxed);
                    }
                    return out;
                }
                self.stats.optimistic_retries.fetch_add(1, Ordering::Relaxed);
                std::hint::spin_loop();
            }
            self.stats.lock_fallbacks.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.locked_reads.fetch_add(1, Ordering::Relaxed);
        }
        op(&bucket.data.read())
    }

    /// Runs `op` under `id`'s bucket's exclusive lock with the seqlock
    /// critical-section protocol: sequence odd while the data is unstable.
    fn write_with<T>(&self, id: ObjectId, op: impl FnOnce(&mut BucketData) -> T) -> T {
        let bucket = self.bucket(id);
        let mut guard = bucket.data.write();
        let entered = bucket.seq.fetch_add(1, Ordering::AcqRel);
        debug_assert_eq!(
            entered & 1,
            0,
            "seqlock entered odd: another writer inside the critical section \
             despite the exclusive lock"
        );
        let out = op(&mut guard);
        let exited = bucket.seq.fetch_add(1, Ordering::Release);
        debug_assert_eq!(
            exited,
            entered + 1,
            "seqlock sequence moved inside the critical section"
        );
        out
    }

    /// Inserts an object at [`Version::INITIAL`] with an empty dependency
    /// list, replacing any previous entry.
    pub fn insert_initial(&self, id: ObjectId, value: Value) {
        let entry = ObjectEntry::initial(id, value.clone());
        let dependencies = Arc::clone(&entry.dependencies);
        let history_depth = self.history_depth;
        self.write_with(id, move |data| {
            data.objects.insert(id, entry);
            if history_depth > 0 {
                data.history.insert(
                    id,
                    vec![HistoricalVersion {
                        version: Version::INITIAL,
                        value,
                        dependencies,
                        installed_by: None,
                    }],
                );
            }
        });
    }

    /// Returns a copy of the current entry for `id`.
    ///
    /// The copy is cheap: the value blob and the dependency list are shared
    /// by reference count with the stored entry. On the optimistic path the
    /// snapshot is taken under a non-blocking guard — the entry returned is
    /// exactly one committed state, never a mix of two installs — and a
    /// writer committing mid-snapshot is counted as an optimistic race.
    pub fn get(&self, id: ObjectId) -> TCacheResult<ObjectEntry> {
        self.read_with(id, |data| data.objects.get(&id).cloned())
            .ok_or(TCacheError::UnknownObject(id))
    }

    /// Returns the current version of `id` without copying the value.
    pub fn version_of(&self, id: ObjectId) -> TCacheResult<Version> {
        self.read_with(id, |data| data.objects.get(&id).map(|e| e.version))
            .ok_or(TCacheError::UnknownObject(id))
    }

    /// Returns `true` if the object exists.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.read_with(id, |data| data.objects.contains_key(&id))
    }

    /// Number of objects stored.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.data.read().objects.len()).sum()
    }

    /// Returns `true` if the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|b| b.data.read().objects.is_empty())
    }

    /// Installs a new version of an object (value, version and dependency
    /// list), recording the previous version into the history.
    ///
    /// Concurrent installs of the *same* object must be externally
    /// serialized (the two-phase-commit path holds the object's exclusive
    /// lock from [`crate::locks`] across the install); the store itself
    /// only guarantees that each install is atomic with respect to readers.
    ///
    /// # Errors
    /// Returns [`TCacheError::UnknownObject`] if the object was never
    /// populated; committed writes may only touch existing objects in this
    /// reproduction (the workloads never insert brand-new objects
    /// mid-experiment).
    pub fn install(
        &self,
        id: ObjectId,
        value: Value,
        version: Version,
        dependencies: impl Into<Arc<DependencyList>>,
        installed_by: TxnId,
    ) -> TCacheResult<()> {
        let dependencies = dependencies.into();
        let bucket = self.bucket(id);
        let mut guard = bucket.data.write();
        // Reject unknown objects before entering the seqlock critical
        // section, so failed installs never force readers to retry.
        if !guard.objects.contains_key(&id) {
            return Err(TCacheError::UnknownObject(id));
        }
        let entered = bucket.seq.fetch_add(1, Ordering::AcqRel);
        debug_assert_eq!(
            entered & 1,
            0,
            "seqlock entered odd: another writer inside the critical section \
             despite the exclusive lock"
        );
        let entry = guard.objects.get_mut(&id).expect("checked above");
        entry.value = value.clone();
        entry.version = version;
        entry.dependencies = Arc::clone(&dependencies);
        if self.history_depth > 0 {
            let versions = guard.history.entry(id).or_default();
            versions.push(HistoricalVersion {
                version,
                value,
                dependencies,
                installed_by: Some(installed_by),
            });
            if versions.len() > self.history_depth {
                let excess = versions.len() - self.history_depth;
                versions.drain(0..excess);
            }
        }
        let exited = bucket.seq.fetch_add(1, Ordering::Release);
        debug_assert_eq!(
            exited,
            entered + 1,
            "seqlock sequence moved inside the critical section"
        );
        Ok(())
    }

    /// Returns the retained history of an object (oldest first). Empty if
    /// history is disabled or the object is unknown.
    pub fn history(&self, id: ObjectId) -> Vec<HistoricalVersion> {
        self.read_with(id, |data| data.history.get(&id).cloned())
            .unwrap_or_default()
    }

    /// Reads one specific version of `id`: the current entry if `version`
    /// matches it, otherwise the retained history. The lookup is a single
    /// bucket snapshot, so the current entry and the history are observed
    /// coherently.
    ///
    /// Returns `None` if the object is unknown or the version was never
    /// installed / is no longer retained.
    pub fn read_version(&self, id: ObjectId, version: Version) -> Option<HistoricalVersion> {
        self.read_with(id, |data| {
            if let Some(h) = data
                .history
                .get(&id)
                .and_then(|versions| versions.iter().rev().find(|h| h.version == version))
            {
                return Some(h.clone());
            }
            data.objects.get(&id).and_then(|e| {
                (e.version == version).then(|| HistoricalVersion {
                    version: e.version,
                    value: e.value.clone(),
                    dependencies: Arc::clone(&e.dependencies),
                    installed_by: None,
                })
            })
        })
    }

    /// All object ids currently stored (in unspecified order).
    pub fn object_ids(&self) -> Vec<ObjectId> {
        self.buckets
            .iter()
            .flat_map(|b| b.data.read().objects.keys().copied().collect::<Vec<_>>())
            .collect()
    }

    /// Total approximate memory footprint of all entries, in bytes; used to
    /// report the storage overhead of dependency lists.
    pub fn footprint_bytes(&self) -> usize {
        self.buckets
            .iter()
            .map(|b| {
                b.data
                    .read()
                    .objects
                    .values()
                    .map(ObjectEntry::size_bytes)
                    .sum::<usize>()
            })
            .sum()
    }
}

impl Default for VersionedStore {
    fn default() -> Self {
        VersionedStore::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(n: u64, history: usize) -> VersionedStore {
        let s = VersionedStore::new(history);
        for i in 0..n {
            s.insert_initial(ObjectId(i), Value::new(0));
        }
        s
    }

    #[test]
    fn populate_and_get() {
        let s = store_with(5, 0);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert!(s.contains(ObjectId(3)));
        assert!(!s.contains(ObjectId(99)));
        let e = s.get(ObjectId(3)).unwrap();
        assert_eq!(e.version, Version::INITIAL);
        assert!(e.dependencies.is_empty());
        assert_eq!(s.version_of(ObjectId(3)).unwrap(), Version::INITIAL);
        assert_eq!(s.object_ids().len(), 5);
    }

    #[test]
    fn unknown_object_errors() {
        let s = store_with(1, 0);
        assert_eq!(
            s.get(ObjectId(9)).unwrap_err(),
            TCacheError::UnknownObject(ObjectId(9))
        );
        assert!(s.version_of(ObjectId(9)).is_err());
        assert!(s
            .install(
                ObjectId(9),
                Value::new(1),
                Version(1),
                DependencyList::bounded(1),
                TxnId(1)
            )
            .is_err());
    }

    #[test]
    fn install_replaces_value_version_and_deps() {
        let s = store_with(2, 0);
        let mut deps = DependencyList::bounded(3);
        deps.record(ObjectId(1), Version(7));
        s.install(ObjectId(0), Value::new(42), Version(7), deps.clone(), TxnId(1))
            .unwrap();
        let e = s.get(ObjectId(0)).unwrap();
        assert_eq!(e.value.numeric(), 42);
        assert_eq!(e.version, Version(7));
        assert_eq!(*e.dependencies, deps);
    }

    #[test]
    fn history_is_recorded_and_bounded() {
        let s = store_with(1, 3);
        for v in 1..=5u64 {
            s.install(
                ObjectId(0),
                Value::new(v),
                Version(v),
                DependencyList::bounded(1),
                TxnId(v),
            )
            .unwrap();
        }
        let h = s.history(ObjectId(0));
        assert_eq!(h.len(), 3, "history is trimmed to its depth");
        assert_eq!(h.last().unwrap().version, Version(5));
        assert_eq!(h.first().unwrap().version, Version(3));
        assert_eq!(h.last().unwrap().installed_by, Some(TxnId(5)));
    }

    #[test]
    fn history_disabled_returns_empty() {
        let s = store_with(1, 0);
        s.install(
            ObjectId(0),
            Value::new(1),
            Version(1),
            DependencyList::bounded(1),
            TxnId(1),
        )
        .unwrap();
        assert!(s.history(ObjectId(0)).is_empty());
    }

    #[test]
    fn footprint_grows_with_dependencies() {
        let s = store_with(1, 0);
        let before = s.footprint_bytes();
        let mut deps = DependencyList::bounded(5);
        for i in 0..5 {
            deps.record(ObjectId(i), Version(i));
        }
        s.install(ObjectId(0), Value::new(0), Version(1), deps, TxnId(1))
            .unwrap();
        assert!(s.footprint_bytes() > before);
    }

    #[test]
    fn default_store_is_empty() {
        let s = VersionedStore::default();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.read_path(), ReadPath::Optimistic);
    }

    #[test]
    fn locked_mode_reproduces_legacy_layout() {
        let s = VersionedStore::with_read_path(0, ReadPath::Locked);
        assert_eq!(s.read_path(), ReadPath::Locked);
        for i in 0..10 {
            s.insert_initial(ObjectId(i), Value::new(i));
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.get(ObjectId(7)).unwrap().value.numeric(), 7);
        let stats = s.read_path_stats();
        assert_eq!(stats.locked_reads, 1, "locked mode counts blocking reads");
        assert_eq!(stats.optimistic_hits, 0);
    }

    #[test]
    fn optimistic_reads_count_as_hits() {
        let s = store_with(8, 0);
        for i in 0..8 {
            s.get(ObjectId(i)).unwrap();
        }
        let stats = s.read_path_stats();
        assert_eq!(stats.optimistic_hits, 8);
        assert_eq!(stats.lock_fallbacks, 0);
        assert_eq!(stats.locked_reads, 0);
    }

    #[test]
    fn read_version_finds_current_and_historical() {
        let s = store_with(1, 4);
        for v in 1..=3u64 {
            s.install(
                ObjectId(0),
                Value::new(v * 10),
                Version(v),
                DependencyList::bounded(1),
                TxnId(v),
            )
            .unwrap();
        }
        // Current version.
        let cur = s.read_version(ObjectId(0), Version(3)).unwrap();
        assert_eq!(cur.value.numeric(), 30);
        assert_eq!(cur.installed_by, Some(TxnId(3)), "served from history");
        // Historical version.
        let old = s.read_version(ObjectId(0), Version(1)).unwrap();
        assert_eq!(old.value.numeric(), 10);
        assert_eq!(old.installed_by, Some(TxnId(1)));
        // Never installed / unknown object.
        assert!(s.read_version(ObjectId(0), Version(9)).is_none());
        assert!(s.read_version(ObjectId(99), Version(1)).is_none());
    }

    #[test]
    fn read_version_without_history_serves_only_current() {
        let s = store_with(1, 0);
        s.install(
            ObjectId(0),
            Value::new(5),
            Version(2),
            DependencyList::bounded(1),
            TxnId(1),
        )
        .unwrap();
        let cur = s.read_version(ObjectId(0), Version(2)).unwrap();
        assert_eq!(cur.value.numeric(), 5);
        assert_eq!(cur.installed_by, None, "no history: installer unknown");
        assert!(s.read_version(ObjectId(0), Version::INITIAL).is_none());
    }

    #[test]
    fn failed_install_does_not_disturb_readers() {
        let s = store_with(1, 0);
        let before = s.read_path_stats();
        assert!(s
            .install(
                ObjectId(42),
                Value::new(1),
                Version(1),
                DependencyList::bounded(1),
                TxnId(1)
            )
            .is_err());
        s.get(ObjectId(0)).unwrap();
        let after = s.read_path_stats();
        assert_eq!(
            after.optimistic_retries, before.optimistic_retries,
            "a rejected install must not bump the sequence"
        );
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = ReadPathStatsSnapshot {
            optimistic_hits: 1,
            optimistic_retries: 2,
            optimistic_races: 5,
            lock_fallbacks: 3,
            locked_reads: 4,
        };
        a.merge(ReadPathStatsSnapshot {
            optimistic_hits: 10,
            optimistic_retries: 20,
            optimistic_races: 50,
            lock_fallbacks: 30,
            locked_reads: 40,
        });
        assert_eq!(a.optimistic_hits, 11);
        assert_eq!(a.optimistic_retries, 22);
        assert_eq!(a.optimistic_races, 55);
        assert_eq!(a.lock_fallbacks, 33);
        assert_eq!(a.locked_reads, 44);
    }
}
