//! Transaction version assignment.
//!
//! The paper requires that "the version of a transaction is chosen to be
//! larger than the versions of all objects accessed by the transaction"
//! (§III-A) and that versions are totally ordered. A single monotone counter
//! that is always advanced past every observed version satisfies both.

use std::sync::atomic::{AtomicU64, Ordering};
use tcache_types::Version;

/// A monotone version clock shared by all shards of the database.
#[derive(Debug, Default)]
pub struct VersionClock {
    current: AtomicU64,
}

impl VersionClock {
    /// Creates a clock starting just above [`Version::INITIAL`].
    pub fn new() -> Self {
        VersionClock {
            current: AtomicU64::new(Version::INITIAL.as_u64()),
        }
    }

    /// Returns the most recently assigned version without advancing.
    pub fn current(&self) -> Version {
        Version(self.current.load(Ordering::SeqCst))
    }

    /// Assigns a version for a transaction that observed the given object
    /// versions: the result is strictly larger than every observed version
    /// and than every previously assigned version.
    pub fn assign(&self, observed: impl IntoIterator<Item = Version>) -> Version {
        let max_observed = observed
            .into_iter()
            .map(Version::as_u64)
            .max()
            .unwrap_or(0);
        // Raise the clock to at least the max observed version, then tick.
        let mut cur = self.current.load(Ordering::SeqCst);
        loop {
            let target = cur.max(max_observed) + 1;
            match self.current.compare_exchange(
                cur,
                target,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Version(target),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Advances the clock to be at least `version` (used when replaying or
    /// importing state).
    pub fn witness(&self, version: Version) {
        self.current.fetch_max(version.as_u64(), Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_strictly_increasing() {
        let clock = VersionClock::new();
        let v1 = clock.assign(vec![]);
        let v2 = clock.assign(vec![]);
        let v3 = clock.assign(vec![]);
        assert!(v1 < v2 && v2 < v3);
        assert_eq!(clock.current(), v3);
    }

    #[test]
    fn assigned_version_exceeds_observed() {
        let clock = VersionClock::new();
        let v = clock.assign(vec![Version(10), Version(3)]);
        assert!(v > Version(10));
        // Later assignments keep increasing even with smaller observations.
        let v2 = clock.assign(vec![Version(1)]);
        assert!(v2 > v);
    }

    #[test]
    fn witness_advances_clock() {
        let clock = VersionClock::new();
        clock.witness(Version(100));
        let v = clock.assign(vec![]);
        assert!(v > Version(100));
        // Witnessing something old does not move the clock backwards.
        clock.witness(Version(5));
        assert!(clock.current() > Version(100));
    }

    #[test]
    fn concurrent_assignments_are_unique() {
        use std::sync::Arc;
        let clock = Arc::new(VersionClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&clock);
            handles.push(std::thread::spawn(move || {
                (0..500).map(|_| c.assign(vec![])).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<Version> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), before, "no two transactions share a version");
    }
}
