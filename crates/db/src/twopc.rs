//! Two-phase commit across shards.
//!
//! The coordinator partitions a transaction's writes by owning shard, runs
//! the prepare phase on every participant, and commits only if every
//! participant voted yes; otherwise every participant aborts. With a single
//! shard this degenerates to ordinary atomic commit, matching the paper's
//! single-column experimental setup, but the protocol is fully general.
//!
//! Only *writes* interact with the lock tables: the reads an update
//! transaction performs before preparing (and every read-only access) go
//! through the stores' optimistic seqlock path (see [`crate::store`]), so
//! they are snapshots of committed state validated against the bucket
//! sequence rather than lock acquisitions. The exclusive write locks taken
//! at prepare time are unchanged — they are what serializes installs of
//! the same object, which is the precondition the store's `install`
//! documents. A shard's existence check during prepare rides the same
//! optimistic surface ([`VersionedStore::contains`]) and is safe because
//! the objects it guards are already exclusively locked by that point.
//!
//! [`VersionedStore::contains`]: crate::store::VersionedStore::contains

use crate::shard::{PreparedWrite, Shard, Vote};
use std::sync::Arc;
use tcache_types::{ConflictReason, ObjectId, TCacheError, TCacheResult, TxnId, Version};

/// Routes objects to shards by hashing the object id.
#[derive(Debug, Clone, Copy)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// Creates a router over `shards` shards.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a database needs at least one shard");
        ShardRouter { shards }
    }

    /// Returns the index of the shard owning `object`.
    pub fn shard_of(&self, object: ObjectId) -> usize {
        // Objects are numbered densely in the workloads; simple modulo
        // spreads clusters across shards which is the adversarial case for
        // 2PC (most transactions span several shards).
        (object.as_u64() % self.shards as u64) as usize
    }

    /// Number of shards routed over.
    pub fn shard_count(&self) -> usize {
        self.shards
    }
}

/// The outcome of a coordinated commit.
#[derive(Debug, Clone)]
pub struct CommitOutcome {
    /// Which objects were installed, with the versions installed.
    pub installed: Vec<(ObjectId, Version)>,
    /// How many shards participated.
    pub participants: usize,
}

/// The two-phase-commit coordinator.
#[derive(Debug)]
pub struct Coordinator {
    shards: Vec<Arc<Shard>>,
    router: ShardRouter,
}

impl Coordinator {
    /// Creates a coordinator over the given shards.
    ///
    /// # Panics
    /// Panics if `shards` is empty.
    pub fn new(shards: Vec<Arc<Shard>>) -> Self {
        let router = ShardRouter::new(shards.len());
        Coordinator { shards, router }
    }

    /// The router used to place objects.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Access to a shard by index.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn shard(&self, index: usize) -> &Arc<Shard> {
        &self.shards[index]
    }

    /// Returns the shard owning `object`.
    pub fn shard_for(&self, object: ObjectId) -> &Arc<Shard> {
        &self.shards[self.router.shard_of(object)]
    }

    /// Runs two-phase commit for `txn` over the given writes.
    ///
    /// # Errors
    /// Returns [`TCacheError::UpdateAborted`] with
    /// [`ConflictReason::PrepareRejected`] if any participant votes no; all
    /// participants are then told to abort and no write is installed.
    pub fn commit(
        &self,
        txn: TxnId,
        writes: Vec<PreparedWrite>,
    ) -> TCacheResult<CommitOutcome> {
        // Partition the writes by shard.
        let mut per_shard: Vec<Vec<PreparedWrite>> = vec![Vec::new(); self.shards.len()];
        for w in writes {
            per_shard[self.router.shard_of(w.object)].push(w);
        }
        let participants: Vec<usize> = per_shard
            .iter()
            .enumerate()
            .filter(|(_, ws)| !ws.is_empty())
            .map(|(i, _)| i)
            .collect();

        // Phase 1: prepare.
        let mut prepared = Vec::new();
        let mut all_yes = true;
        for &i in &participants {
            let vote = self.shards[i].prepare(txn, std::mem::take(&mut per_shard[i]));
            if vote == Vote::Yes {
                prepared.push(i);
            } else {
                all_yes = false;
                break;
            }
        }

        if !all_yes {
            // Phase 2 (abort): roll back every participant that prepared.
            for &i in &prepared {
                self.shards[i].abort(txn);
            }
            return Err(TCacheError::UpdateAborted {
                txn,
                reason: ConflictReason::PrepareRejected,
            });
        }

        // Phase 2 (commit).
        let mut installed = Vec::new();
        for &i in &participants {
            installed.extend(self.shards[i].commit(txn)?);
        }
        Ok(CommitOutcome {
            installed,
            participants: participants.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::{DependencyList, Value};

    fn coordinator(shards: usize, objects: u64) -> Coordinator {
        let shards: Vec<Arc<Shard>> = (0..shards).map(|i| Arc::new(Shard::new(i, 0))).collect();
        let coord = Coordinator::new(shards);
        for i in 0..objects {
            coord
                .shard_for(ObjectId(i))
                .populate(ObjectId(i), Value::new(0));
        }
        coord
    }

    fn write(o: u64, ver: u64) -> PreparedWrite {
        PreparedWrite {
            object: ObjectId(o),
            value: Value::new(ver),
            version: Version(ver),
            dependencies: DependencyList::bounded(3),
        }
    }

    #[test]
    fn router_is_stable_and_covers_all_shards() {
        let r = ShardRouter::new(4);
        assert_eq!(r.shard_count(), 4);
        for i in 0..100 {
            assert_eq!(r.shard_of(ObjectId(i)), r.shard_of(ObjectId(i)));
            assert!(r.shard_of(ObjectId(i)) < 4);
        }
        let hit: std::collections::HashSet<_> =
            (0..100).map(|i| r.shard_of(ObjectId(i))).collect();
        assert_eq!(hit.len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardRouter::new(0);
    }

    #[test]
    fn multi_shard_commit_installs_everywhere() {
        let coord = coordinator(3, 9);
        let outcome = coord
            .commit(TxnId(1), vec![write(0, 1), write(1, 1), write(2, 1)])
            .unwrap();
        assert_eq!(outcome.installed.len(), 3);
        assert_eq!(outcome.participants, 3);
        for i in 0..3u64 {
            let e = coord.shard_for(ObjectId(i)).store().get(ObjectId(i)).unwrap();
            assert_eq!(e.version, Version(1));
        }
    }

    #[test]
    fn single_shard_transactions_have_one_participant() {
        let coord = coordinator(3, 9);
        // Objects 0, 3, 6 all map to shard 0 with modulo routing.
        let outcome = coord
            .commit(TxnId(1), vec![write(0, 1), write(3, 1), write(6, 1)])
            .unwrap();
        assert_eq!(outcome.participants, 1);
    }

    #[test]
    fn prepare_rejection_aborts_everywhere() {
        let coord = coordinator(2, 4);
        // Hold a lock on object 1 (shard 1) through a dangling prepare.
        assert_eq!(
            coord.shard_for(ObjectId(1)).prepare(TxnId(9), vec![write(1, 5)]),
            Vote::Yes
        );
        // A transaction touching objects 0 (shard 0) and 1 (shard 1) must
        // fail and leave shard 0 untouched and unlocked.
        let err = coord
            .commit(TxnId(2), vec![write(0, 2), write(1, 2)])
            .unwrap_err();
        assert!(matches!(err, TCacheError::UpdateAborted { .. }));
        assert_eq!(
            coord.shard_for(ObjectId(0)).store().get(ObjectId(0)).unwrap().version,
            Version::INITIAL
        );
        // Shard 0 must not be left locked: a fresh transaction succeeds.
        coord.commit(TxnId(3), vec![write(0, 3)]).unwrap();
        // Clean up the dangling prepare and verify object 1 commits too.
        coord.shard_for(ObjectId(1)).abort(TxnId(9));
        coord.commit(TxnId(4), vec![write(1, 4)]).unwrap();
    }

    #[test]
    fn unknown_object_rejects_commit() {
        let coord = coordinator(2, 2);
        let err = coord.commit(TxnId(1), vec![write(77, 1)]).unwrap_err();
        assert!(matches!(err, TCacheError::UpdateAborted { .. }));
    }

    #[test]
    fn empty_write_set_commits_trivially() {
        let coord = coordinator(2, 2);
        let outcome = coord.commit(TxnId(1), vec![]).unwrap();
        assert!(outcome.installed.is_empty());
        assert_eq!(outcome.participants, 0);
    }
}
