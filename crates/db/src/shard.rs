//! A database shard: owns a partition of the object space and participates
//! in two-phase commit.
//!
//! Each shard has its own [`VersionedStore`] and lock table. The coordinator
//! (in [`crate::twopc`]) drives the `prepare` / `commit` / `abort` protocol;
//! a shard votes *yes* on prepare only if it can lock every touched object
//! it owns.

use crate::locks::{LockMode, LockTable};
use crate::store::VersionedStore;
use parking_lot::Mutex;
use std::collections::HashMap;
use tcache_types::{
    DependencyList, ObjectEntry, ObjectId, TCacheError, TCacheResult, TxnId, Value, Version,
};

/// A single write staged during the prepare phase.
#[derive(Debug, Clone)]
pub struct PreparedWrite {
    /// The object to overwrite.
    pub object: ObjectId,
    /// The new value.
    pub value: Value,
    /// The version to install (the transaction's version).
    pub version: Version,
    /// The dependency list to install alongside.
    pub dependencies: DependencyList,
}

/// The vote a shard casts during the prepare phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vote {
    /// The shard locked everything and staged the writes.
    Yes,
    /// The shard could not lock an object; the transaction must abort.
    No,
}

/// A shard of the backend database.
#[derive(Debug)]
pub struct Shard {
    index: usize,
    store: VersionedStore,
    locks: LockTable,
    prepared: Mutex<HashMap<TxnId, Vec<PreparedWrite>>>,
}

impl Shard {
    /// Creates an empty shard. `history_depth` is forwarded to the store.
    pub fn new(index: usize, history_depth: usize) -> Self {
        Shard {
            index,
            store: VersionedStore::new(history_depth),
            locks: LockTable::new(),
            prepared: Mutex::new(HashMap::new()),
        }
    }

    /// The shard's position within the database.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Direct access to the underlying store (reads, populate).
    pub fn store(&self) -> &VersionedStore {
        &self.store
    }

    /// Inserts an object at its initial version (population phase, outside
    /// of any transaction).
    pub fn populate(&self, id: ObjectId, value: Value) {
        self.store.insert_initial(id, value);
    }

    /// Reads the current entry for an object owned by this shard, taking a
    /// short shared lock for the duration of the copy.
    pub fn read(&self, txn: TxnId, id: ObjectId) -> TCacheResult<ObjectEntry> {
        self.locks.try_lock_all(txn, &[id], LockMode::Shared)?;
        let result = self.store.get(id);
        // Reads release immediately; update transactions re-acquire
        // exclusive locks at prepare time (the read version is validated by
        // the coordinator before commit).
        self.locks.release_all(txn);
        result
    }

    /// Phase one of two-phase commit: lock the written objects exclusively
    /// and stage the writes. Returns the shard's vote.
    ///
    /// Locks are acquired *before* the existence check so the check cannot
    /// race with concurrent writers, and every acquired lock is released on
    /// the `Vote::No` path — a shard that votes no never leaves partial
    /// locks behind.
    pub fn prepare(&self, txn: TxnId, writes: Vec<PreparedWrite>) -> Vote {
        let objects: Vec<ObjectId> = writes.iter().map(|w| w.object).collect();
        if self
            .locks
            .try_lock_all(txn, &objects, LockMode::Exclusive)
            .is_err()
        {
            // try_lock_all is all-or-nothing: a conflict grants nothing.
            return Vote::No;
        }
        if objects.iter().any(|&o| !self.store.contains(o)) {
            self.locks.release_all(txn);
            return Vote::No;
        }
        self.prepared.lock().insert(txn, writes);
        Vote::Yes
    }

    /// Phase two (success): install every staged write and release locks.
    ///
    /// # Errors
    /// Returns [`TCacheError::UnknownTransaction`] if the transaction never
    /// prepared at this shard.
    pub fn commit(&self, txn: TxnId) -> TCacheResult<Vec<(ObjectId, Version)>> {
        let writes = self
            .prepared
            .lock()
            .remove(&txn)
            .ok_or(TCacheError::UnknownTransaction(txn))?;
        let mut installed = Vec::with_capacity(writes.len());
        for w in writes {
            self.store
                .install(w.object, w.value, w.version, w.dependencies, txn)?;
            installed.push((w.object, w.version));
        }
        self.locks.release_all(txn);
        Ok(installed)
    }

    /// Phase two (failure): discard staged writes and release locks.
    /// Aborting a transaction that never prepared here is a no-op.
    pub fn abort(&self, txn: TxnId) {
        self.prepared.lock().remove(&txn);
        self.locks.release_all(txn);
    }

    /// Number of transactions currently in the prepared state
    /// (diagnostics / tests).
    pub fn prepared_count(&self) -> usize {
        self.prepared.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(o: u64, val: u64, ver: u64) -> PreparedWrite {
        PreparedWrite {
            object: ObjectId(o),
            value: Value::new(val),
            version: Version(ver),
            dependencies: DependencyList::bounded(3),
        }
    }

    fn shard_with(n: u64) -> Shard {
        let s = Shard::new(0, 0);
        for i in 0..n {
            s.populate(ObjectId(i), Value::new(0));
        }
        s
    }

    #[test]
    fn prepare_commit_installs_writes() {
        let s = shard_with(3);
        assert_eq!(s.index(), 0);
        let vote = s.prepare(TxnId(1), vec![write(0, 7, 1), write(1, 8, 1)]);
        assert_eq!(vote, Vote::Yes);
        assert_eq!(s.prepared_count(), 1);
        let installed = s.commit(TxnId(1)).unwrap();
        assert_eq!(installed.len(), 2);
        assert_eq!(s.store().get(ObjectId(0)).unwrap().value.numeric(), 7);
        assert_eq!(s.store().get(ObjectId(0)).unwrap().version, Version(1));
        assert_eq!(s.prepared_count(), 0);
    }

    #[test]
    fn prepare_conflicting_transactions_vote_no() {
        let s = shard_with(3);
        assert_eq!(s.prepare(TxnId(1), vec![write(0, 1, 1)]), Vote::Yes);
        assert_eq!(s.prepare(TxnId(2), vec![write(0, 2, 2)]), Vote::No);
        // After commit the object is free again.
        s.commit(TxnId(1)).unwrap();
        assert_eq!(s.prepare(TxnId(2), vec![write(0, 2, 2)]), Vote::Yes);
    }

    #[test]
    fn abort_discards_staged_writes_and_releases_locks() {
        let s = shard_with(2);
        assert_eq!(s.prepare(TxnId(1), vec![write(0, 9, 5)]), Vote::Yes);
        s.abort(TxnId(1));
        assert_eq!(s.prepared_count(), 0);
        assert_eq!(s.store().get(ObjectId(0)).unwrap().value.numeric(), 0);
        assert_eq!(s.prepare(TxnId(2), vec![write(0, 2, 2)]), Vote::Yes);
        // Aborting an unknown transaction is a no-op.
        s.abort(TxnId(42));
    }

    #[test]
    fn commit_without_prepare_errors() {
        let s = shard_with(1);
        assert_eq!(
            s.commit(TxnId(5)).unwrap_err(),
            TCacheError::UnknownTransaction(TxnId(5))
        );
    }

    #[test]
    fn prepare_unknown_object_votes_no() {
        let s = shard_with(1);
        assert_eq!(s.prepare(TxnId(1), vec![write(99, 1, 1)]), Vote::No);
    }

    #[test]
    fn rejected_prepare_leaks_no_partial_locks() {
        // A prepare touching an existing and a missing object votes no; the
        // lock it already acquired on the existing object must be released,
        // so a subsequent transaction can lock and commit it.
        let s = shard_with(2);
        assert_eq!(
            s.prepare(TxnId(1), vec![write(0, 5, 1), write(99, 5, 1)]),
            Vote::No
        );
        assert_eq!(s.prepared_count(), 0, "nothing may be staged after a no vote");
        assert_eq!(
            s.prepare(TxnId(2), vec![write(0, 7, 2), write(1, 7, 2)]),
            Vote::Yes,
            "the rejected prepare must not leave object 0 locked"
        );
        s.commit(TxnId(2)).unwrap();
        assert_eq!(s.store().get(ObjectId(0)).unwrap().value.numeric(), 7);
        // The original transaction holds nothing either: aborting it is a
        // no-op and it can start over cleanly.
        s.abort(TxnId(1));
        assert_eq!(s.prepare(TxnId(1), vec![write(1, 9, 3)]), Vote::Yes);
        s.abort(TxnId(1));
    }

    #[test]
    fn read_returns_entry_and_releases_lock() {
        let s = shard_with(1);
        let e = s.read(TxnId(1), ObjectId(0)).unwrap();
        assert_eq!(e.version, Version::INITIAL);
        // The read lock is released, so an exclusive prepare succeeds.
        assert_eq!(s.prepare(TxnId(2), vec![write(0, 1, 1)]), Vote::Yes);
        assert!(s.read(TxnId(3), ObjectId(55)).is_err());
    }
}
