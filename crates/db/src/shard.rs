//! A database shard: owns a partition of the object space and participates
//! in two-phase commit.
//!
//! Each shard has its own [`VersionedStore`] and lock table. The coordinator
//! (in [`crate::twopc`]) drives the `prepare` / `commit` / `abort` protocol;
//! a shard votes *yes* on prepare only if it can lock every touched object
//! it owns.
//!
//! Read-only accesses take the store's read path: on the default
//! [`ReadPath::Optimistic`] a read is a seqlock-validated snapshot that
//! never touches the lock table at all (validation replaces the shared
//! lock), while [`ReadPath::Locked`] reproduces the historical behaviour of
//! a short-lived shared lock per read. Write locking is identical in both
//! modes.

use crate::locks::{LockMode, LockTable};
use crate::store::{HistoricalVersion, ReadPath, VersionedStore};
use parking_lot::Mutex;
use std::collections::HashMap;
use tcache_types::{
    DependencyList, ObjectEntry, ObjectId, TCacheError, TCacheResult, TxnId, Value, Version,
};

/// A single write staged during the prepare phase.
#[derive(Debug, Clone)]
pub struct PreparedWrite {
    /// The object to overwrite.
    pub object: ObjectId,
    /// The new value.
    pub value: Value,
    /// The version to install (the transaction's version).
    pub version: Version,
    /// The dependency list to install alongside.
    pub dependencies: DependencyList,
}

/// The vote a shard casts during the prepare phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vote {
    /// The shard locked everything and staged the writes.
    Yes,
    /// The shard could not lock an object; the transaction must abort.
    No,
}

/// A shard of the backend database.
#[derive(Debug)]
pub struct Shard {
    index: usize,
    store: VersionedStore,
    locks: LockTable,
    prepared: Mutex<HashMap<TxnId, Vec<PreparedWrite>>>,
}

impl Shard {
    /// Creates an empty shard on the default optimistic read path.
    /// `history_depth` is forwarded to the store.
    pub fn new(index: usize, history_depth: usize) -> Self {
        Shard::with_read_path(index, history_depth, ReadPath::default())
    }

    /// Creates an empty shard whose store serves reads on an explicit
    /// [`ReadPath`] (see [`VersionedStore::with_read_path`]).
    pub fn with_read_path(index: usize, history_depth: usize, read_path: ReadPath) -> Self {
        Shard {
            index,
            store: VersionedStore::with_read_path(history_depth, read_path),
            locks: LockTable::new(),
            prepared: Mutex::new(HashMap::new()),
        }
    }

    /// The shard's position within the database.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of objects currently locked on this shard. Zero whenever no
    /// transaction is between prepare and commit/abort here.
    pub fn locked_objects(&self) -> usize {
        self.locks.locked_objects()
    }

    /// Direct access to the underlying store (reads, populate).
    pub fn store(&self) -> &VersionedStore {
        &self.store
    }

    /// Inserts an object at its initial version (population phase, outside
    /// of any transaction).
    pub fn populate(&self, id: ObjectId, value: Value) {
        self.store.insert_initial(id, value);
    }

    /// Reads the current entry for an object owned by this shard on the
    /// store's configured read path, without registering in the lock
    /// table. This is the surface behind every cache miss
    /// ([`Database::read_entry`]) and every update transaction's
    /// pre-prepare reads: on [`ReadPath::Optimistic`] it is a non-blocking
    /// bucket snapshot; on [`ReadPath::Locked`] it blocks on the store's
    /// single lock (but still never touches the 2PL table — the observed
    /// versions are what update transactions later re-validate under their
    /// exclusive locks, and read-only traffic needs no table entry at
    /// all).
    ///
    /// [`Database::read_entry`]: crate::database::Database::read_entry
    pub fn read_entry(&self, id: ObjectId) -> TCacheResult<ObjectEntry> {
        self.store.get(id)
    }

    /// Reads the current entry for an object on behalf of transaction
    /// `txn`, honouring the lock table when the store is in
    /// [`ReadPath::Locked`] mode.
    ///
    /// On [`ReadPath::Optimistic`] this is [`Shard::read_entry`] — the
    /// snapshot is validated against the bucket sequence instead of a
    /// shared lock, so the read is invisible to the lock table. On
    /// [`ReadPath::Locked`] the historical behaviour is kept: a short
    /// shared lock held for the duration of the copy (failing no-wait if a
    /// writer holds the object exclusively). Either way, update
    /// transactions re-acquire exclusive locks at prepare time, which is
    /// where write-write conflicts are decided.
    pub fn read(&self, txn: TxnId, id: ObjectId) -> TCacheResult<ObjectEntry> {
        if self.store.read_path() == ReadPath::Optimistic {
            return self.read_entry(id);
        }
        self.locks.try_lock_all(txn, &[id], LockMode::Shared)?;
        let result = self.store.get(id);
        // Reads release immediately; update transactions re-acquire
        // exclusive locks at prepare time.
        self.locks.release_all(txn);
        result
    }

    /// Reads one specific version of an object from the store's retained
    /// history (or the current entry if it matches). Never takes a lock-
    /// table lock: the lookup is a single bucket snapshot, so the current
    /// entry and the history are observed coherently even against a racing
    /// install. Surfaced as [`Database::read_version`] for audits.
    ///
    /// Returns `None` if the object is unknown or the version is not
    /// retained (see [`VersionedStore::read_version`]).
    ///
    /// [`Database::read_version`]: crate::database::Database::read_version
    pub fn read_version(&self, id: ObjectId, version: Version) -> Option<HistoricalVersion> {
        self.store.read_version(id, version)
    }

    /// Phase one of two-phase commit: lock the written objects exclusively
    /// and stage the writes. Returns the shard's vote.
    ///
    /// Locks are acquired *before* the existence check so the check cannot
    /// race with concurrent writers, and every acquired lock is released on
    /// the `Vote::No` path — a shard that votes no never leaves partial
    /// locks behind.
    pub fn prepare(&self, txn: TxnId, writes: Vec<PreparedWrite>) -> Vote {
        let objects: Vec<ObjectId> = writes.iter().map(|w| w.object).collect();
        if self
            .locks
            .try_lock_all(txn, &objects, LockMode::Exclusive)
            .is_err()
        {
            // try_lock_all is all-or-nothing: a conflict grants nothing.
            return Vote::No;
        }
        if objects.iter().any(|&o| !self.store.contains(o)) {
            self.locks.release_all(txn);
            return Vote::No;
        }
        self.prepared.lock().insert(txn, writes);
        Vote::Yes
    }

    /// Phase two (success): install every staged write and release locks.
    ///
    /// # Errors
    /// Returns [`TCacheError::UnknownTransaction`] if the transaction never
    /// prepared at this shard.
    pub fn commit(&self, txn: TxnId) -> TCacheResult<Vec<(ObjectId, Version)>> {
        let writes = self
            .prepared
            .lock()
            .remove(&txn)
            .ok_or(TCacheError::UnknownTransaction(txn))?;
        let mut installed = Vec::with_capacity(writes.len());
        for w in writes {
            self.store
                .install(w.object, w.value, w.version, w.dependencies, txn)?;
            installed.push((w.object, w.version));
        }
        self.locks.release_all(txn);
        Ok(installed)
    }

    /// Phase two (failure): discard staged writes and release locks.
    /// Aborting a transaction that never prepared here is a no-op.
    pub fn abort(&self, txn: TxnId) {
        self.prepared.lock().remove(&txn);
        self.locks.release_all(txn);
    }

    /// Number of transactions currently in the prepared state
    /// (diagnostics / tests).
    pub fn prepared_count(&self) -> usize {
        self.prepared.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(o: u64, val: u64, ver: u64) -> PreparedWrite {
        PreparedWrite {
            object: ObjectId(o),
            value: Value::new(val),
            version: Version(ver),
            dependencies: DependencyList::bounded(3),
        }
    }

    fn shard_with(n: u64) -> Shard {
        let s = Shard::new(0, 0);
        for i in 0..n {
            s.populate(ObjectId(i), Value::new(0));
        }
        s
    }

    #[test]
    fn prepare_commit_installs_writes() {
        let s = shard_with(3);
        assert_eq!(s.index(), 0);
        let vote = s.prepare(TxnId(1), vec![write(0, 7, 1), write(1, 8, 1)]);
        assert_eq!(vote, Vote::Yes);
        assert_eq!(s.prepared_count(), 1);
        let installed = s.commit(TxnId(1)).unwrap();
        assert_eq!(installed.len(), 2);
        assert_eq!(s.store().get(ObjectId(0)).unwrap().value.numeric(), 7);
        assert_eq!(s.store().get(ObjectId(0)).unwrap().version, Version(1));
        assert_eq!(s.prepared_count(), 0);
    }

    #[test]
    fn prepare_conflicting_transactions_vote_no() {
        let s = shard_with(3);
        assert_eq!(s.prepare(TxnId(1), vec![write(0, 1, 1)]), Vote::Yes);
        assert_eq!(s.prepare(TxnId(2), vec![write(0, 2, 2)]), Vote::No);
        // After commit the object is free again.
        s.commit(TxnId(1)).unwrap();
        assert_eq!(s.prepare(TxnId(2), vec![write(0, 2, 2)]), Vote::Yes);
    }

    #[test]
    fn abort_discards_staged_writes_and_releases_locks() {
        let s = shard_with(2);
        assert_eq!(s.prepare(TxnId(1), vec![write(0, 9, 5)]), Vote::Yes);
        s.abort(TxnId(1));
        assert_eq!(s.prepared_count(), 0);
        assert_eq!(s.store().get(ObjectId(0)).unwrap().value.numeric(), 0);
        assert_eq!(s.prepare(TxnId(2), vec![write(0, 2, 2)]), Vote::Yes);
        // Aborting an unknown transaction is a no-op.
        s.abort(TxnId(42));
    }

    #[test]
    fn commit_without_prepare_errors() {
        let s = shard_with(1);
        assert_eq!(
            s.commit(TxnId(5)).unwrap_err(),
            TCacheError::UnknownTransaction(TxnId(5))
        );
    }

    #[test]
    fn prepare_unknown_object_votes_no() {
        let s = shard_with(1);
        assert_eq!(s.prepare(TxnId(1), vec![write(99, 1, 1)]), Vote::No);
    }

    #[test]
    fn rejected_prepare_leaks_no_partial_locks() {
        // A prepare touching an existing and a missing object votes no; the
        // lock it already acquired on the existing object must be released,
        // so a subsequent transaction can lock and commit it.
        let s = shard_with(2);
        assert_eq!(
            s.prepare(TxnId(1), vec![write(0, 5, 1), write(99, 5, 1)]),
            Vote::No
        );
        assert_eq!(s.prepared_count(), 0, "nothing may be staged after a no vote");
        assert_eq!(
            s.prepare(TxnId(2), vec![write(0, 7, 2), write(1, 7, 2)]),
            Vote::Yes,
            "the rejected prepare must not leave object 0 locked"
        );
        s.commit(TxnId(2)).unwrap();
        assert_eq!(s.store().get(ObjectId(0)).unwrap().value.numeric(), 7);
        // The original transaction holds nothing either: aborting it is a
        // no-op and it can start over cleanly.
        s.abort(TxnId(1));
        assert_eq!(s.prepare(TxnId(1), vec![write(1, 9, 3)]), Vote::Yes);
        s.abort(TxnId(1));
    }

    #[test]
    fn read_returns_entry_and_releases_lock() {
        let s = shard_with(1);
        let e = s.read(TxnId(1), ObjectId(0)).unwrap();
        assert_eq!(e.version, Version::INITIAL);
        // The read leaves no lock behind, so an exclusive prepare succeeds.
        assert_eq!(s.prepare(TxnId(2), vec![write(0, 1, 1)]), Vote::Yes);
        assert!(s.read(TxnId(3), ObjectId(55)).is_err());
    }

    #[test]
    fn optimistic_read_never_registers_in_lock_table() {
        let s = shard_with(1);
        s.read(TxnId(1), ObjectId(0)).unwrap();
        assert_eq!(
            s.locks.locked_objects(),
            0,
            "optimistic reads are invisible to the lock table"
        );
        // Even while another transaction holds the exclusive lock, an
        // optimistic read is served (it reads the last committed state).
        assert_eq!(s.prepare(TxnId(2), vec![write(0, 1, 1)]), Vote::Yes);
        let e = s.read(TxnId(3), ObjectId(0)).unwrap();
        assert_eq!(e.version, Version::INITIAL, "staged write not yet visible");
        s.commit(TxnId(2)).unwrap();
        assert_eq!(s.read(TxnId(3), ObjectId(0)).unwrap().version, Version(1));
    }

    #[test]
    fn locked_read_path_takes_and_releases_shared_lock() {
        let s = Shard::with_read_path(0, 0, ReadPath::Locked);
        s.populate(ObjectId(0), Value::new(0));
        s.read(TxnId(1), ObjectId(0)).unwrap();
        assert_eq!(s.locks.locked_objects(), 0, "released after the copy");
        assert_eq!(s.store().read_path(), ReadPath::Locked);
        // A reader that cannot get the shared lock aborts (no-wait): hold
        // the exclusive lock through a dangling prepare.
        assert_eq!(s.prepare(TxnId(2), vec![write(0, 1, 1)]), Vote::Yes);
        assert!(s.read(TxnId(3), ObjectId(0)).is_err());
        s.abort(TxnId(2));
    }

    #[test]
    fn read_version_serves_history_without_locks() {
        let s = Shard::new(0, 4);
        s.populate(ObjectId(0), Value::new(0));
        assert_eq!(s.prepare(TxnId(1), vec![write(0, 7, 1)]), Vote::Yes);
        s.commit(TxnId(1)).unwrap();
        assert_eq!(s.prepare(TxnId(2), vec![write(0, 8, 2)]), Vote::Yes);
        s.commit(TxnId(2)).unwrap();
        let old = s.read_version(ObjectId(0), Version(1)).unwrap();
        assert_eq!(old.value.numeric(), 7);
        assert_eq!(old.installed_by, Some(TxnId(1)));
        let cur = s.read_version(ObjectId(0), Version(2)).unwrap();
        assert_eq!(cur.value.numeric(), 8);
        assert!(s.read_version(ObjectId(0), Version(9)).is_none());
        assert_eq!(s.locks.locked_objects(), 0);
    }
}
