//! Invalidation records published by the database after update transactions.
//!
//! "On startup, the cache registers an upcall that can be used by the
//! database to report invalidations; after each update transaction, the
//! database asynchronously sends invalidations to the cache for all objects
//! that were modified" (§IV). Delivery is asynchronous and unreliable — the
//! unreliability itself is modelled by `tcache-net`, not here.

use serde::{Deserialize, Serialize};
use std::fmt;
use tcache_types::{ObjectId, TxnId, Version};

/// A single invalidation: the object that changed and the version that now
/// supersedes whatever a cache may hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Invalidation {
    /// The modified object.
    pub object: ObjectId,
    /// The version installed by the update.
    pub new_version: Version,
    /// The transaction that performed the update.
    pub txn: TxnId,
    /// Position of this invalidation in the database's totally ordered
    /// stream, stamped by the invalidation log at commit time. Sequence
    /// numbers start at 1; `0` marks an unsequenced record (hand-built in a
    /// test, or produced before the log stamped it) and is exempt from gap
    /// detection on the cache side.
    pub seq: u64,
}

impl Invalidation {
    /// Creates an unsequenced invalidation record (`seq == 0`). The
    /// invalidation log assigns real sequence numbers at commit time.
    pub fn new(object: ObjectId, new_version: Version, txn: TxnId) -> Self {
        Invalidation {
            object,
            new_version,
            txn,
            seq: 0,
        }
    }

    /// Creates an invalidation record with an explicit sequence number.
    pub fn with_seq(object: ObjectId, new_version: Version, txn: TxnId, seq: u64) -> Self {
        Invalidation {
            object,
            new_version,
            txn,
            seq,
        }
    }
}

impl fmt::Display for Invalidation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalidate {}→{} (by {})", self.object, self.new_version, self.txn)
    }
}

/// A batch of invalidations produced by one committed update transaction.
///
/// Batches preserve the per-transaction grouping so fault models can choose
/// to drop individual invalidations (the paper's 20 % uniform drop) or whole
/// batches (configuration changes, buffer overruns).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InvalidationBatch {
    invalidations: Vec<Invalidation>,
}

impl InvalidationBatch {
    /// Creates a batch from individual invalidations.
    pub fn new(invalidations: Vec<Invalidation>) -> Self {
        InvalidationBatch { invalidations }
    }

    /// The invalidations in the batch.
    pub fn invalidations(&self) -> &[Invalidation] {
        &self.invalidations
    }

    /// Number of invalidations in the batch.
    pub fn len(&self) -> usize {
        self.invalidations.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.invalidations.is_empty()
    }

    /// Iterates over the invalidations.
    pub fn iter(&self) -> impl Iterator<Item = &Invalidation> {
        self.invalidations.iter()
    }

    /// Stamps consecutive sequence numbers starting at `start` onto the
    /// batch, preserving order. Called by the invalidation log while it
    /// holds the stream counter, so a batch occupies a contiguous window of
    /// the stream.
    pub fn stamp_from(&mut self, start: u64) {
        for (i, inv) in self.invalidations.iter_mut().enumerate() {
            inv.seq = start + i as u64;
        }
    }
}

impl IntoIterator for InvalidationBatch {
    type Item = Invalidation;
    type IntoIter = std::vec::IntoIter<Invalidation>;

    fn into_iter(self) -> Self::IntoIter {
        self.invalidations.into_iter()
    }
}

impl FromIterator<Invalidation> for InvalidationBatch {
    fn from_iter<T: IntoIterator<Item = Invalidation>>(iter: T) -> Self {
        InvalidationBatch::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_round_trip() {
        let invs: Vec<Invalidation> = (0..3)
            .map(|i| Invalidation::new(ObjectId(i), Version(i + 1), TxnId(9)))
            .collect();
        let batch: InvalidationBatch = invs.iter().copied().collect();
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        assert_eq!(batch.invalidations(), &invs[..]);
        assert_eq!(batch.iter().count(), 3);
        // Consuming iteration last, so no clone of the batch is needed.
        let collected: Vec<_> = batch.into_iter().collect();
        assert_eq!(collected, invs);
        assert!(InvalidationBatch::default().is_empty());
    }

    #[test]
    fn stamping_assigns_consecutive_sequence_numbers() {
        let mut batch: InvalidationBatch = (0..3)
            .map(|i| Invalidation::new(ObjectId(i), Version(1), TxnId(2)))
            .collect();
        assert!(batch.iter().all(|inv| inv.seq == 0));
        batch.stamp_from(7);
        let seqs: Vec<u64> = batch.iter().map(|inv| inv.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
        let explicit = Invalidation::with_seq(ObjectId(1), Version(2), TxnId(3), 42);
        assert_eq!(explicit.seq, 42);
    }

    #[test]
    fn display_mentions_object_and_version() {
        let i = Invalidation::new(ObjectId(4), Version(2), TxnId(7));
        let s = i.to_string();
        assert!(s.contains("o4"));
        assert!(s.contains("v2"));
        assert!(s.contains("t7"));
    }
}
