//! Invalidation records published by the database after update transactions.
//!
//! "On startup, the cache registers an upcall that can be used by the
//! database to report invalidations; after each update transaction, the
//! database asynchronously sends invalidations to the cache for all objects
//! that were modified" (§IV). Delivery is asynchronous and unreliable — the
//! unreliability itself is modelled by `tcache-net`, not here.

use serde::{Deserialize, Serialize};
use std::fmt;
use tcache_types::{ObjectId, TxnId, Version};

/// A single invalidation: the object that changed and the version that now
/// supersedes whatever a cache may hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Invalidation {
    /// The modified object.
    pub object: ObjectId,
    /// The version installed by the update.
    pub new_version: Version,
    /// The transaction that performed the update.
    pub txn: TxnId,
}

impl Invalidation {
    /// Creates an invalidation record.
    pub fn new(object: ObjectId, new_version: Version, txn: TxnId) -> Self {
        Invalidation {
            object,
            new_version,
            txn,
        }
    }
}

impl fmt::Display for Invalidation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalidate {}→{} (by {})", self.object, self.new_version, self.txn)
    }
}

/// A batch of invalidations produced by one committed update transaction.
///
/// Batches preserve the per-transaction grouping so fault models can choose
/// to drop individual invalidations (the paper's 20 % uniform drop) or whole
/// batches (configuration changes, buffer overruns).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InvalidationBatch {
    invalidations: Vec<Invalidation>,
}

impl InvalidationBatch {
    /// Creates a batch from individual invalidations.
    pub fn new(invalidations: Vec<Invalidation>) -> Self {
        InvalidationBatch { invalidations }
    }

    /// The invalidations in the batch.
    pub fn invalidations(&self) -> &[Invalidation] {
        &self.invalidations
    }

    /// Number of invalidations in the batch.
    pub fn len(&self) -> usize {
        self.invalidations.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.invalidations.is_empty()
    }

    /// Iterates over the invalidations.
    pub fn iter(&self) -> impl Iterator<Item = &Invalidation> {
        self.invalidations.iter()
    }
}

impl IntoIterator for InvalidationBatch {
    type Item = Invalidation;
    type IntoIter = std::vec::IntoIter<Invalidation>;

    fn into_iter(self) -> Self::IntoIter {
        self.invalidations.into_iter()
    }
}

impl FromIterator<Invalidation> for InvalidationBatch {
    fn from_iter<T: IntoIterator<Item = Invalidation>>(iter: T) -> Self {
        InvalidationBatch::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_round_trip() {
        let invs: Vec<Invalidation> = (0..3)
            .map(|i| Invalidation::new(ObjectId(i), Version(i + 1), TxnId(9)))
            .collect();
        let batch: InvalidationBatch = invs.iter().copied().collect();
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        assert_eq!(batch.invalidations(), &invs[..]);
        assert_eq!(batch.iter().count(), 3);
        // Consuming iteration last, so no clone of the batch is needed.
        let collected: Vec<_> = batch.into_iter().collect();
        assert_eq!(collected, invs);
        assert!(InvalidationBatch::default().is_empty());
    }

    #[test]
    fn display_mentions_object_and_version() {
        let i = Invalidation::new(ObjectId(4), Version(2), TxnId(7));
        let s = i.to_string();
        assert!(s.contains("o4"));
        assert!(s.contains("v2"));
        assert!(s.contains("t7"));
    }
}
