//! Commit-time dependency-list maintenance (§III-A).
//!
//! When a transaction commits, the database aggregates the `(key, version)`
//! pairs and dependency lists of everything in the read and write sets into a
//! single *full dependency list*, prunes it with LRU to the configured bound,
//! and stores it with every object written by the transaction. The written
//! objects themselves are recorded in the list at the transaction's version,
//! so subsequent readers of any one of them learn the minimum versions of the
//! others they must observe.

use std::sync::Arc;
use tcache_types::{DependencyList, ObjectId, Version};

/// One accessed object as seen by the committing transaction: its key, the
/// version that was read (for writes, the version *before* the write) and the
/// dependency list attached to that version.
#[derive(Debug, Clone)]
pub struct AccessedObject {
    /// The object key.
    pub key: ObjectId,
    /// The version observed when the transaction read the object.
    pub observed_version: Version,
    /// The dependency list attached to the observed version (shared with
    /// the store entry it was read from).
    pub dependencies: Arc<DependencyList>,
    /// Whether the transaction writes this object.
    pub written: bool,
}

/// The result of the aggregation: the dependency list to attach to each
/// written object, already excluding that object itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregatedDependencies {
    full: DependencyList,
    bound: usize,
}

impl AggregatedDependencies {
    /// Aggregates the dependency information of a committing transaction.
    ///
    /// `txn_version` is the version assigned to the transaction; every
    /// object in the access set enters the full list at the version a
    /// subsequent reader must not under-read: `txn_version` for written
    /// objects (their new version) and the observed version for read-only
    /// objects.
    ///
    /// LRU recency order: the inherited dependency lists of the accessed
    /// objects are merged first (they describe *older* accesses), and the
    /// keys of the current access set are recorded last, in access order.
    /// The keys being committed right now are therefore the most recently
    /// used entries and survive pruning, which is what lets short lists
    /// capture the co-access structure of clustered workloads.
    pub fn aggregate(
        accessed: &[AccessedObject],
        txn_version: Version,
        bound: usize,
    ) -> AggregatedDependencies {
        let mut full = DependencyList::unbounded();
        // Older information first: the dependency lists inherited from the
        // versions this transaction observed.
        for a in accessed {
            full.merge(&a.dependencies);
        }
        // Newest information last: the access set itself, at the versions a
        // subsequent reader must not under-read.
        for a in accessed {
            let effective = if a.written {
                txn_version
            } else {
                a.observed_version
            };
            full.record(a.key, effective);
        }
        AggregatedDependencies { full, bound }
    }

    /// The full (unbounded) aggregated list; mostly useful for tests and
    /// for the unbounded Theorem 1 configuration.
    pub fn full(&self) -> &DependencyList {
        &self.full
    }

    /// Produces the dependency list to store with written object `key`:
    /// the aggregated list without `key` itself, pruned to the bound.
    ///
    /// Built directly from the aggregated entries (which are already
    /// most-recent-first and duplicate-free), so deriving a per-object list
    /// is one bounded collect — no full-list clone, remove and re-prune.
    pub fn list_for(&self, key: ObjectId) -> DependencyList {
        DependencyList::from_most_recent(
            self.full.iter().filter(|e| e.object != key).copied(),
            self.bound,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(i: u64) -> ObjectId {
        ObjectId(i)
    }
    fn v(i: u64) -> Version {
        Version(i)
    }

    fn accessed(key: u64, ver: u64, written: bool, deps: &[(u64, u64)]) -> AccessedObject {
        let mut list = DependencyList::unbounded();
        for &(d, dv) in deps {
            list.record(o(d), v(dv));
        }
        AccessedObject {
            key: o(key),
            observed_version: v(ver),
            dependencies: list.into(),
            written,
        }
    }

    #[test]
    fn written_objects_enter_at_txn_version() {
        let acc = vec![
            accessed(1, 3, true, &[]),
            accessed(2, 4, true, &[]),
        ];
        let agg = AggregatedDependencies::aggregate(&acc, v(10), 5);
        // The list for object 1 contains object 2 at the transaction version.
        let l1 = agg.list_for(o(1));
        assert_eq!(l1.version_of(o(2)), Some(v(10)));
        assert!(!l1.contains(o(1)), "an object never depends on itself");
        let l2 = agg.list_for(o(2));
        assert_eq!(l2.version_of(o(1)), Some(v(10)));
    }

    #[test]
    fn read_only_objects_enter_at_observed_version() {
        let acc = vec![
            accessed(1, 3, false, &[]),
            accessed(2, 4, true, &[]),
        ];
        let agg = AggregatedDependencies::aggregate(&acc, v(10), 5);
        let l2 = agg.list_for(o(2));
        assert_eq!(l2.version_of(o(1)), Some(v(3)));
    }

    #[test]
    fn inherits_transitive_dependencies() {
        // o2's current version depends on o6@v6; after a joint update of o1
        // and o2, o1 inherits that dependency (the paper's o1/o2 example).
        let acc = vec![
            accessed(1, 1, true, &[(5, 5)]),
            accessed(2, 2, true, &[(6, 6)]),
        ];
        let agg = AggregatedDependencies::aggregate(&acc, v(9), 5);
        let l1 = agg.list_for(o(1));
        assert_eq!(l1.version_of(o(6)), Some(v(6)));
        assert_eq!(l1.version_of(o(5)), Some(v(5)));
        assert_eq!(l1.version_of(o(2)), Some(v(9)));
    }

    #[test]
    fn pruning_keeps_most_recent_accesses() {
        // 6 written objects with bound 3: each object's list keeps the most
        // recently accessed other objects.
        let acc: Vec<_> = (0..6).map(|i| accessed(i, i, true, &[])).collect();
        let agg = AggregatedDependencies::aggregate(&acc, v(100), 3);
        let l0 = agg.list_for(o(0));
        assert_eq!(l0.len(), 3);
        assert!(l0.contains(o(5)));
        assert!(l0.contains(o(4)));
        assert!(l0.contains(o(3)));
    }

    #[test]
    fn full_list_is_unpruned() {
        let acc: Vec<_> = (0..6).map(|i| accessed(i, i, true, &[])).collect();
        let agg = AggregatedDependencies::aggregate(&acc, v(100), 2);
        assert_eq!(agg.full().len(), 6);
        assert_eq!(agg.list_for(o(0)).len(), 2);
    }

    #[test]
    fn duplicate_access_keeps_largest_version() {
        // The same key appears as read (old version) and written; the
        // written (transaction) version must win.
        let acc = vec![
            accessed(1, 3, false, &[]),
            accessed(1, 3, true, &[]),
            accessed(2, 0, true, &[]),
        ];
        let agg = AggregatedDependencies::aggregate(&acc, v(7), 5);
        let l2 = agg.list_for(o(2));
        assert_eq!(l2.version_of(o(1)), Some(v(7)));
    }
}
