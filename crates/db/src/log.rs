//! Bounded in-memory invalidation log with replay-from-sequence.
//!
//! Every committed update's invalidation batch passes through the log
//! before it is published: the log stamps each invalidation with the next
//! position in the database's totally ordered stream and retains a bounded
//! suffix of that stream. A cache that detects a sequence gap (after a
//! drop, a crash, or a partition) asks the database to replay everything
//! after the last sequence number it applied; when the requested suffix has
//! been truncated away, the cache falls back to a versioned snapshot resync
//! (clear and re-fetch on demand) instead.
//!
//! The log is the seam for a future durable storage engine: today it is a
//! mutex-protected ring buffer, but the replay contract —
//! [`InvalidationLog::replay_after`] returning either the exact suffix or
//! `Truncated` — is what a persistent implementation would keep.

use crate::invalidation::{Invalidation, InvalidationBatch};
use parking_lot::Mutex;
use std::collections::VecDeque;

/// Result of asking the log for everything after a sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidationReplay {
    /// The complete suffix `(after_seq, latest]`, in stream order. Empty
    /// when the caller is already up to date.
    Replayed(Vec<Invalidation>),
    /// The suffix is no longer fully retained; the caller must resync from
    /// a snapshot and treat `latest` as its new stream position.
    Truncated {
        /// The newest sequence number the stream has reached.
        latest: u64,
    },
}

#[derive(Debug, Default)]
struct LogState {
    /// Retained suffix of the stream, oldest first, contiguous by `seq`.
    retained: VecDeque<Invalidation>,
    /// Last sequence number handed out; the stream starts at 1.
    latest: u64,
}

/// Bounded, totally ordered log of published invalidations.
#[derive(Debug)]
pub struct InvalidationLog {
    state: Mutex<LogState>,
    capacity: usize,
}

impl InvalidationLog {
    /// Creates a log retaining at most `capacity` invalidations. A zero
    /// capacity is allowed: sequence numbers are still stamped, but every
    /// replay request falls back to `Truncated` (pure snapshot resync).
    pub fn new(capacity: usize) -> Self {
        InvalidationLog {
            state: Mutex::new(LogState::default()),
            capacity,
        }
    }

    /// The retention capacity the log was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Stamps the batch with the next consecutive sequence numbers and
    /// appends it to the retained suffix, evicting the oldest entries past
    /// capacity. This is the single source of truth for the stream counter,
    /// so a batch always occupies a contiguous window of the stream.
    pub fn record(&self, batch: &mut InvalidationBatch) {
        if batch.is_empty() {
            return;
        }
        let mut state = self.state.lock();
        batch.stamp_from(state.latest + 1);
        state.latest += batch.len() as u64;
        for inv in batch.iter() {
            state.retained.push_back(*inv);
        }
        while state.retained.len() > self.capacity {
            state.retained.pop_front();
        }
    }

    /// The newest sequence number the stream has reached (0 before the
    /// first commit).
    pub fn latest_seq(&self) -> u64 {
        self.state.lock().latest
    }

    /// Number of invalidations currently retained.
    pub fn retained_len(&self) -> usize {
        self.state.lock().retained.len()
    }

    /// Returns every invalidation with `seq > after_seq`, or `Truncated`
    /// when that suffix is no longer fully retained.
    pub fn replay_after(&self, after_seq: u64) -> InvalidationReplay {
        let state = self.state.lock();
        if after_seq >= state.latest {
            return InvalidationReplay::Replayed(Vec::new());
        }
        match state.retained.front() {
            // The whole suffix is retained iff the oldest retained entry is
            // no newer than the first one requested.
            Some(oldest) if oldest.seq <= after_seq + 1 => InvalidationReplay::Replayed(
                state
                    .retained
                    .iter()
                    .filter(|inv| inv.seq > after_seq)
                    .copied()
                    .collect(),
            ),
            _ => InvalidationReplay::Truncated {
                latest: state.latest,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::{ObjectId, TxnId, Version};

    fn batch(n: u64) -> InvalidationBatch {
        (0..n)
            .map(|i| Invalidation::new(ObjectId(i), Version(1), TxnId(1)))
            .collect()
    }

    #[test]
    fn record_stamps_contiguous_stream_positions() {
        let log = InvalidationLog::new(16);
        assert_eq!(log.latest_seq(), 0);
        let mut first = batch(3);
        log.record(&mut first);
        assert_eq!(
            first.iter().map(|i| i.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        let mut second = batch(2);
        log.record(&mut second);
        assert_eq!(second.iter().map(|i| i.seq).collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(log.latest_seq(), 5);
        assert_eq!(log.retained_len(), 5);
        // Empty batches consume no sequence numbers.
        log.record(&mut InvalidationBatch::default());
        assert_eq!(log.latest_seq(), 5);
    }

    #[test]
    fn replay_returns_the_exact_suffix() {
        let log = InvalidationLog::new(16);
        let mut b = batch(5);
        log.record(&mut b);
        match log.replay_after(2) {
            InvalidationReplay::Replayed(invs) => {
                assert_eq!(invs.iter().map(|i| i.seq).collect::<Vec<_>>(), vec![3, 4, 5]);
            }
            other => panic!("expected replay, got {other:?}"),
        }
        // Up to date → empty replay.
        assert_eq!(log.replay_after(5), InvalidationReplay::Replayed(Vec::new()));
        assert_eq!(log.replay_after(9), InvalidationReplay::Replayed(Vec::new()));
        // From zero (a cold cache) the full stream is replayable while the
        // log still retains it.
        match log.replay_after(0) {
            InvalidationReplay::Replayed(invs) => assert_eq!(invs.len(), 5),
            other => panic!("expected replay, got {other:?}"),
        }
    }

    #[test]
    fn truncation_forces_snapshot_resync() {
        let log = InvalidationLog::new(4);
        let mut b = batch(10);
        log.record(&mut b);
        assert_eq!(log.retained_len(), 4, "bounded at capacity");
        // Seqs 7..=10 are retained; asking for anything after 6 replays.
        match log.replay_after(6) {
            InvalidationReplay::Replayed(invs) => {
                assert_eq!(invs.iter().map(|i| i.seq).collect::<Vec<_>>(), vec![7, 8, 9, 10]);
            }
            other => panic!("expected replay, got {other:?}"),
        }
        // Seq 6 itself was evicted: the suffix after 5 is incomplete.
        assert_eq!(
            log.replay_after(5),
            InvalidationReplay::Truncated { latest: 10 }
        );
        assert_eq!(
            log.replay_after(0),
            InvalidationReplay::Truncated { latest: 10 }
        );
    }

    #[test]
    fn zero_capacity_always_truncates_once_nonempty() {
        let log = InvalidationLog::new(0);
        let mut b = batch(2);
        log.record(&mut b);
        assert_eq!(log.latest_seq(), 2);
        assert_eq!(log.retained_len(), 0);
        assert_eq!(log.replay_after(0), InvalidationReplay::Truncated { latest: 2 });
        // Still "up to date" replays empty without touching the ring.
        assert_eq!(log.replay_after(2), InvalidationReplay::Replayed(Vec::new()));
    }
}
