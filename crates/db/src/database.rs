//! The database façade: the public entry point of the backend store.
//!
//! [`Database`] combines the shards, the two-phase-commit coordinator, the
//! version clock and the dependency aggregation into the single-column
//! backend used throughout the evaluation. Update transactions are executed
//! with [`Database::execute_update`] (the evaluation's read-modify-write
//! shape) or [`Database::execute_update_writes`] (explicit read and write
//! sets); caches serve misses with [`Database::read_entry`].

use crate::dependency_update::{AccessedObject, AggregatedDependencies};
use crate::invalidation::{Invalidation, InvalidationBatch};
use crate::log::{InvalidationLog, InvalidationReplay};
use crate::publisher::{InvalidationPublisher, InvalidationSink};
use crate::shard::{PreparedWrite, Shard};
use crate::stats::{DbStats, DbStatsSnapshot};
use crate::store::ReadPath;
use crate::twopc::Coordinator;
use crate::version_clock::VersionClock;
use std::sync::Arc;
use tcache_types::{
    AccessSet, CacheId, DependencyBound, ObjectEntry, ObjectId, TCacheResult, TxnId, Value,
    Version, WriteRecord,
};

/// Configuration of the backend database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatabaseConfig {
    /// Number of shards the object space is hash-partitioned over.
    pub shards: usize,
    /// Bound on the dependency lists stored with objects (§III-A).
    pub dependency_bound: DependencyBound,
    /// Historical versions retained per object for auditing (0 disables).
    pub history_depth: usize,
    /// Which read path the shards' stores serve snapshots on: the
    /// seqlock-validated optimistic path (default) or the historical
    /// lock-per-read baseline (see [`crate::store`]).
    pub read_path: ReadPath,
    /// Invalidations retained by the in-memory log for replay after a cache
    /// detects a sequence gap. A recovering cache whose gap is older than
    /// the retained suffix falls back to a snapshot resync.
    pub invalidation_log_capacity: usize,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            shards: 1,
            dependency_bound: DependencyBound::default(),
            history_depth: 0,
            read_path: ReadPath::default(),
            invalidation_log_capacity: 1024,
        }
    }
}

impl DatabaseConfig {
    /// Convenience constructor matching the paper's experiments: a single
    /// shard with the given dependency-list bound.
    pub fn with_bound(bound: usize) -> Self {
        DatabaseConfig {
            dependency_bound: DependencyBound::Bounded(bound),
            ..DatabaseConfig::default()
        }
    }

    /// The unbounded configuration of Theorem 1.
    pub fn unbounded() -> Self {
        DatabaseConfig {
            dependency_bound: DependencyBound::Unbounded,
            ..DatabaseConfig::default()
        }
    }

    /// Returns the configuration with the read path replaced (builder
    /// style): `DatabaseConfig::with_bound(3).read_path(ReadPath::Locked)`.
    #[must_use]
    pub fn read_path(mut self, read_path: ReadPath) -> Self {
        self.read_path = read_path;
        self
    }
}

/// The result of a committed update transaction.
#[derive(Debug, Clone)]
pub struct UpdateCommit {
    /// The transaction id.
    pub txn: TxnId,
    /// The version assigned to the transaction (installed on every write).
    pub version: Version,
    /// `(object, version observed before the update)` for every read.
    pub reads: Vec<(ObjectId, Version)>,
    /// `(object, new version)` for every written object.
    pub written: Vec<(ObjectId, Version)>,
    /// Invalidations to be delivered (asynchronously, unreliably) to caches.
    pub invalidations: InvalidationBatch,
}

/// The transactional backend key-value store.
#[derive(Debug)]
pub struct Database {
    coordinator: Coordinator,
    clock: VersionClock,
    stats: DbStats,
    config: DatabaseConfig,
    publisher: InvalidationPublisher,
    log: InvalidationLog,
}

impl Database {
    /// Creates an empty database with the given configuration.
    ///
    /// # Panics
    /// Panics if `config.shards` is zero.
    pub fn new(config: DatabaseConfig) -> Self {
        let shards: Vec<Arc<Shard>> = (0..config.shards)
            .map(|i| Arc::new(Shard::with_read_path(i, config.history_depth, config.read_path)))
            .collect();
        Database {
            coordinator: Coordinator::new(shards),
            clock: VersionClock::new(),
            stats: DbStats::new(),
            config,
            publisher: InvalidationPublisher::new(),
            log: InvalidationLog::new(config.invalidation_log_capacity),
        }
    }

    /// Registers a cache's invalidation upcall (§IV): after every committed
    /// update, the batch of invalidations is fanned out to every registered
    /// cache. The per-cache delivery pipe (its loss and delay) sits between
    /// this upcall and the cache — see `tcache-net`.
    pub fn register_invalidation_upcall(&self, cache: CacheId, sink: InvalidationSink) {
        self.publisher.register(cache, sink);
    }

    /// Registers a cache's invalidation upcall that reports pipe overflow
    /// and stalls back to the registry, so publish-side backpressure shows
    /// up in [`Database::publish_stats`] and commit latency can be
    /// attributed to slow pipes.
    pub fn register_reporting_invalidation_upcall(
        &self,
        cache: CacheId,
        sink: crate::publisher::ReportingSink,
    ) {
        self.publisher.register_reporting(cache, sink);
    }

    /// Removes a cache's invalidation upcall; returns `true` if one existed.
    pub fn unregister_invalidation_upcall(&self, cache: CacheId) -> bool {
        self.publisher.unregister(cache)
    }

    /// Per-cache publication statistics: batches and invalidations
    /// published, overflow and stalls reported by the sinks, and the time
    /// commits spent inside each cache's upcall.
    #[must_use]
    pub fn publish_stats(&self) -> Vec<(CacheId, crate::publisher::PublishStats)> {
        self.publisher.publish_stats()
    }

    /// The per-cache upcall registry (for inspection and advanced wiring).
    pub fn invalidation_publisher(&self) -> &InvalidationPublisher {
        &self.publisher
    }

    /// The configuration the database was built with.
    pub fn config(&self) -> DatabaseConfig {
        self.config
    }

    /// Loads objects at their initial version (outside any transaction).
    pub fn populate(&self, objects: impl IntoIterator<Item = (ObjectId, Value)>) {
        for (id, value) in objects {
            self.coordinator.shard_for(id).populate(id, value);
        }
    }

    /// Number of objects stored across all shards.
    pub fn object_count(&self) -> usize {
        (0..self.config.shards)
            .map(|i| self.coordinator.shard(i).store().len())
            .sum()
    }

    /// Serves a single-object read on behalf of a cache miss, returning the
    /// value, version and dependency list (§III-B: caches "read from the
    /// database not only the object's value, but also its version and the
    /// dependency list").
    ///
    /// # Errors
    /// Returns [`tcache_types::TCacheError::UnknownObject`] if the object
    /// does not exist.
    pub fn read_entry(&self, id: ObjectId) -> TCacheResult<ObjectEntry> {
        self.stats.record_single_read();
        self.coordinator.shard_for(id).read_entry(id)
    }

    /// Reads an entry without counting it as externally generated load
    /// (used by tests and by the monitor when auditing).
    pub fn peek_entry(&self, id: ObjectId) -> TCacheResult<ObjectEntry> {
        self.coordinator.shard_for(id).read_entry(id)
    }

    /// Reads one specific retained version of an object (the current entry
    /// or, with `history_depth > 0`, an older one) as a single coherent
    /// shard snapshot. This is the audit surface: the monitor and tests
    /// can resolve the exact value/dependency state a transaction
    /// observed, without locks and without counting as load.
    ///
    /// Returns `None` if the object is unknown or the version is not
    /// retained.
    pub fn read_version(
        &self,
        id: ObjectId,
        version: Version,
    ) -> Option<crate::store::HistoricalVersion> {
        self.coordinator.shard_for(id).read_version(id, version)
    }

    /// Executes the evaluation's standard update transaction over an access
    /// set: every distinct object in the set is read and then written back
    /// with its value bumped ("update transactions first read all objects
    /// from the database, and then update all objects", §V-B1).
    ///
    /// # Errors
    /// Propagates concurrency-control aborts and unknown-object errors.
    pub fn execute_update(&self, txn: TxnId, access: &AccessSet) -> TCacheResult<UpdateCommit> {
        let distinct = access.distinct();
        let mut writes = Vec::with_capacity(distinct.len());
        for &id in &distinct {
            let current = match self.coordinator.shard_for(id).read_entry(id) {
                Ok(e) => e,
                Err(e) => {
                    self.stats.record_update_abort();
                    return Err(e);
                }
            };
            writes.push(WriteRecord::new(id, current.value.bump()));
        }
        self.execute_update_writes(txn, &distinct, writes)
    }

    /// Executes an update transaction with an explicit read set and write
    /// set. Objects in `writes` that are missing from `reads` are read
    /// implicitly (their old dependency lists still flow into the
    /// aggregation).
    ///
    /// # Errors
    /// Returns an error if any object is unknown or the two-phase commit is
    /// rejected; in that case nothing is installed.
    pub fn execute_update_writes(
        &self,
        txn: TxnId,
        reads: &[ObjectId],
        writes: Vec<WriteRecord>,
    ) -> TCacheResult<UpdateCommit> {
        // Assemble the full accessed-object list: all reads plus all writes.
        let mut access_order: Vec<ObjectId> = Vec::new();
        for &r in reads {
            if !access_order.contains(&r) {
                access_order.push(r);
            }
        }
        for w in &writes {
            if !access_order.contains(&w.object) {
                access_order.push(w.object);
            }
        }

        let mut accessed = Vec::with_capacity(access_order.len());
        let mut observed_reads = Vec::with_capacity(access_order.len());
        for &id in &access_order {
            let entry = match self.coordinator.shard_for(id).read_entry(id) {
                Ok(e) => e,
                Err(e) => {
                    self.stats.record_update_abort();
                    return Err(e);
                }
            };
            observed_reads.push((id, entry.version));
            accessed.push(AccessedObject {
                key: id,
                observed_version: entry.version,
                dependencies: entry.dependencies,
                written: writes.iter().any(|w| w.object == id),
            });
        }
        self.stats.record_update_reads(access_order.len() as u64);

        // Assign the transaction version: larger than every observed version.
        let version = self.clock.assign(observed_reads.iter().map(|&(_, v)| v));

        // Aggregate dependency lists per §III-A.
        let bound = self.config.dependency_bound.limit();
        let agg = AggregatedDependencies::aggregate(&accessed, version, bound);

        // Stage the physical writes and run two-phase commit.
        let prepared: Vec<PreparedWrite> = writes
            .iter()
            .map(|w| PreparedWrite {
                object: w.object,
                value: w.value.clone(),
                version,
                dependencies: agg.list_for(w.object),
            })
            .collect();

        match self.coordinator.commit(txn, prepared) {
            Ok(outcome) => {
                self.stats.record_update_commit(outcome.installed.len() as u64);
                let mut invalidations: InvalidationBatch = outcome
                    .installed
                    .iter()
                    .map(|&(o, v)| Invalidation::new(o, v, txn))
                    .collect();
                // Stamp stream positions and retain the batch for replay
                // before fanning it out, so every published invalidation is
                // already sequenced and recoverable.
                self.log.record(&mut invalidations);
                self.stats.record_invalidations(invalidations.len() as u64);
                self.publisher.publish(&invalidations);
                Ok(UpdateCommit {
                    txn,
                    version,
                    reads: observed_reads,
                    written: outcome.installed,
                    invalidations,
                })
            }
            Err(e) => {
                self.stats.record_update_abort();
                Err(e)
            }
        }
    }

    /// A snapshot of the database load counters, including the read-path
    /// classification (optimistic hits / retries / lock fallbacks)
    /// aggregated over every shard's store.
    #[must_use]
    pub fn stats(&self) -> DbStatsSnapshot {
        let mut snap = self.stats.snapshot();
        for i in 0..self.config.shards {
            snap.read_path
                .merge(self.coordinator.shard(i).store().read_path_stats());
        }
        snap
    }

    /// The newest invalidation sequence number the database has published
    /// (0 before the first committed update). A cache restarting with a
    /// cold store adopts this as its stream position: everything older is
    /// irrelevant because misses re-fetch current versions.
    pub fn invalidation_latest_seq(&self) -> u64 {
        self.log.latest_seq()
    }

    /// Replays every invalidation with a sequence number greater than
    /// `after_seq`, or reports that the log has been truncated past that
    /// point (the caller must snapshot-resync instead).
    pub fn replay_invalidations(&self, after_seq: u64) -> InvalidationReplay {
        self.log.replay_after(after_seq)
    }

    /// Number of objects currently exclusively locked across all shards.
    /// Zero whenever no transaction is mid-flight — the invariant the
    /// crash-during-2PC tests pin down.
    pub fn locked_objects(&self) -> usize {
        (0..self.config.shards)
            .map(|i| self.coordinator.shard(i).locked_objects())
            .sum()
    }

    /// The configured dependency bound.
    pub fn dependency_bound(&self) -> DependencyBound {
        self.config.dependency_bound
    }

    /// Approximate memory footprint of all stored entries in bytes
    /// (value payloads plus dependency lists).
    pub fn footprint_bytes(&self) -> usize {
        (0..self.config.shards)
            .map(|i| self.coordinator.shard(i).store().footprint_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::TCacheError;

    fn db_with(objects: u64, bound: usize) -> Database {
        let db = Database::new(DatabaseConfig::with_bound(bound));
        db.populate((0..objects).map(|i| (ObjectId(i), Value::new(0))));
        db
    }

    #[test]
    fn populate_and_read() {
        let db = db_with(10, 3);
        assert_eq!(db.object_count(), 10);
        let e = db.read_entry(ObjectId(4)).unwrap();
        assert_eq!(e.version, Version::INITIAL);
        assert_eq!(db.stats().single_reads, 1);
        assert!(db.read_entry(ObjectId(99)).is_err());
        assert_eq!(db.config().shards, 1);
    }

    #[test]
    fn update_bumps_values_and_versions() {
        let db = db_with(10, 3);
        let access: AccessSet = vec![1u64, 2, 3].into();
        let commit = db.execute_update(TxnId(1), &access).unwrap();
        assert_eq!(commit.written.len(), 3);
        assert!(commit.version > Version::INITIAL);
        for &(o, v) in &commit.written {
            let e = db.peek_entry(o).unwrap();
            assert_eq!(e.version, v);
            assert_eq!(e.value.numeric(), 1);
        }
        // Stats reflect the commit.
        let s = db.stats();
        assert_eq!(s.updates_committed, 1);
        assert_eq!(s.objects_written, 3);
        assert_eq!(s.invalidations_published, 3);
        assert_eq!(s.update_reads, 3);
    }

    #[test]
    fn repeated_access_set_objects_are_deduplicated() {
        let db = db_with(5, 3);
        let access: AccessSet = vec![1u64, 1, 2, 2, 2].into();
        let commit = db.execute_update(TxnId(1), &access).unwrap();
        assert_eq!(commit.written.len(), 2);
    }

    #[test]
    fn dependency_lists_cross_reference_co_written_objects() {
        let db = db_with(10, 5);
        let access: AccessSet = vec![1u64, 2, 3].into();
        let commit = db.execute_update(TxnId(1), &access).unwrap();
        let e1 = db.peek_entry(ObjectId(1)).unwrap();
        assert_eq!(e1.dependencies.version_of(ObjectId(2)), Some(commit.version));
        assert_eq!(e1.dependencies.version_of(ObjectId(3)), Some(commit.version));
        assert!(!e1.dependencies.contains(ObjectId(1)));
    }

    #[test]
    fn dependency_lists_are_bounded() {
        let db = db_with(20, 2);
        let access: AccessSet = vec![1u64, 2, 3, 4, 5, 6].into();
        db.execute_update(TxnId(1), &access).unwrap();
        for i in 1..=6u64 {
            assert!(db.peek_entry(ObjectId(i)).unwrap().dependencies.len() <= 2);
        }
    }

    #[test]
    fn dependencies_are_inherited_across_transactions() {
        let db = db_with(10, 5);
        // txn 1 links objects 1 and 2.
        db.execute_update(TxnId(1), &vec![1u64, 2].into()).unwrap();
        // txn 2 links objects 2 and 3; object 3 must inherit the dependency
        // on object 1 from object 2's list.
        db.execute_update(TxnId(2), &vec![2u64, 3].into()).unwrap();
        let e3 = db.peek_entry(ObjectId(3)).unwrap();
        assert!(e3.dependencies.contains(ObjectId(2)));
        assert!(e3.dependencies.contains(ObjectId(1)), "transitive dependency inherited");
    }

    #[test]
    fn versions_strictly_increase_across_transactions() {
        let db = db_with(5, 3);
        let c1 = db.execute_update(TxnId(1), &vec![1u64].into()).unwrap();
        let c2 = db.execute_update(TxnId(2), &vec![1u64].into()).unwrap();
        let c3 = db.execute_update(TxnId(3), &vec![2u64].into()).unwrap();
        assert!(c1.version < c2.version);
        assert!(c2.version < c3.version);
        assert_eq!(db.peek_entry(ObjectId(1)).unwrap().version, c2.version);
    }

    #[test]
    fn explicit_read_write_sets() {
        let db = db_with(10, 5);
        // Read object 5 (without writing it), write objects 1 and 2.
        let commit = db
            .execute_update_writes(
                TxnId(1),
                &[ObjectId(5)],
                vec![
                    WriteRecord::new(ObjectId(1), Value::new(100)),
                    WriteRecord::new(ObjectId(2), Value::new(200)),
                ],
            )
            .unwrap();
        assert_eq!(commit.reads.len(), 3, "reads cover the read set plus implicit write reads");
        assert_eq!(commit.written.len(), 2);
        assert_eq!(db.peek_entry(ObjectId(1)).unwrap().value.numeric(), 100);
        // Object 5 is not written, keeps its initial version…
        assert_eq!(db.peek_entry(ObjectId(5)).unwrap().version, Version::INITIAL);
        // …but the written objects depend on it at the observed version.
        let e1 = db.peek_entry(ObjectId(1)).unwrap();
        assert_eq!(e1.dependencies.version_of(ObjectId(5)), Some(Version::INITIAL));
    }

    #[test]
    fn committed_updates_fan_out_to_registered_upcalls() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let db = db_with(10, 3);
        let counts: Vec<Arc<AtomicU64>> = (0..2).map(|_| Arc::new(AtomicU64::new(0))).collect();
        for (i, count) in counts.iter().enumerate() {
            let count = Arc::clone(count);
            db.register_invalidation_upcall(
                CacheId(i as u32),
                Box::new(move |batch| {
                    count.fetch_add(batch.len() as u64, Ordering::Relaxed);
                }),
            );
        }
        db.execute_update(TxnId(1), &vec![1u64, 2, 3].into()).unwrap();
        assert_eq!(counts[0].load(Ordering::Relaxed), 3);
        assert_eq!(counts[1].load(Ordering::Relaxed), 3);
        assert_eq!(
            db.invalidation_publisher().registered_caches(),
            vec![CacheId(0), CacheId(1)]
        );
        // An aborted update publishes nothing.
        let _ = db.execute_update(TxnId(2), &vec![99u64].into());
        assert_eq!(counts[0].load(Ordering::Relaxed), 3);
        assert!(db.unregister_invalidation_upcall(CacheId(1)));
        db.execute_update(TxnId(3), &vec![4u64].into()).unwrap();
        assert_eq!(counts[0].load(Ordering::Relaxed), 4);
        assert_eq!(counts[1].load(Ordering::Relaxed), 3);
    }

    #[test]
    fn invalidations_are_sequenced_and_replayable() {
        let db = db_with(10, 3);
        assert_eq!(db.invalidation_latest_seq(), 0);
        let c1 = db.execute_update(TxnId(1), &vec![1u64, 2].into()).unwrap();
        let c2 = db.execute_update(TxnId(2), &vec![3u64].into()).unwrap();
        // Each batch occupies a contiguous stream window, in commit order.
        let seqs1: Vec<u64> = c1.invalidations.iter().map(|i| i.seq).collect();
        let seqs2: Vec<u64> = c2.invalidations.iter().map(|i| i.seq).collect();
        assert_eq!(seqs1, vec![1, 2]);
        assert_eq!(seqs2, vec![3]);
        assert_eq!(db.invalidation_latest_seq(), 3);
        match db.replay_invalidations(1) {
            crate::log::InvalidationReplay::Replayed(invs) => {
                assert_eq!(invs.iter().map(|i| i.seq).collect::<Vec<_>>(), vec![2, 3]);
            }
            other => panic!("expected replay, got {other:?}"),
        }
        assert_eq!(db.locked_objects(), 0, "no locks held after commits");
    }

    #[test]
    fn truncated_log_reports_snapshot_resync() {
        let config = DatabaseConfig {
            invalidation_log_capacity: 2,
            ..DatabaseConfig::with_bound(3)
        };
        let db = Database::new(config);
        db.populate((0..8).map(|i| (ObjectId(i), Value::new(0))));
        for t in 0..4u64 {
            db.execute_update(TxnId(t), &vec![t, t + 1].into()).unwrap();
        }
        assert_eq!(db.invalidation_latest_seq(), 8);
        assert_eq!(
            db.replay_invalidations(0),
            crate::log::InvalidationReplay::Truncated { latest: 8 }
        );
        match db.replay_invalidations(6) {
            crate::log::InvalidationReplay::Replayed(invs) => assert_eq!(invs.len(), 2),
            other => panic!("expected replay, got {other:?}"),
        }
    }

    #[test]
    fn unknown_object_aborts_and_counts() {
        let db = db_with(2, 3);
        let err = db
            .execute_update(TxnId(1), &vec![0u64, 99].into())
            .unwrap_err();
        assert_eq!(err, TCacheError::UnknownObject(ObjectId(99)));
        assert_eq!(db.stats().updates_aborted, 1);
        assert_eq!(db.stats().updates_committed, 0);
    }

    #[test]
    fn multi_shard_database_behaves_identically() {
        let config = DatabaseConfig {
            shards: 4,
            dependency_bound: DependencyBound::Bounded(3),
            ..DatabaseConfig::default()
        };
        let db = Database::new(config);
        db.populate((0..100).map(|i| (ObjectId(i), Value::new(0))));
        assert_eq!(db.object_count(), 100);
        let commit = db
            .execute_update(TxnId(1), &vec![1u64, 2, 3, 4, 5].into())
            .unwrap();
        assert_eq!(commit.written.len(), 5);
        for &(o, v) in &commit.written {
            assert_eq!(db.peek_entry(o).unwrap().version, v);
        }
        let e1 = db.peek_entry(ObjectId(1)).unwrap();
        assert!(e1.dependencies.contains(ObjectId(5)));
    }

    #[test]
    fn unbounded_config_keeps_every_dependency() {
        let db = Database::new(DatabaseConfig::unbounded());
        db.populate((0..30).map(|i| (ObjectId(i), Value::new(0))));
        let access: AccessSet = (0..20u64).collect::<Vec<_>>().into();
        db.execute_update(TxnId(1), &access).unwrap();
        let e = db.peek_entry(ObjectId(0)).unwrap();
        assert_eq!(e.dependencies.len(), 19);
    }

    #[test]
    fn read_version_serves_the_audit_surface() {
        let config = DatabaseConfig {
            history_depth: 4,
            ..DatabaseConfig::with_bound(3)
        };
        let db = Database::new(config);
        db.populate((0..4).map(|i| (ObjectId(i), Value::new(0))));
        let c1 = db.execute_update(TxnId(1), &vec![1u64].into()).unwrap();
        let c2 = db.execute_update(TxnId(2), &vec![1u64].into()).unwrap();
        let old = db.read_version(ObjectId(1), c1.version).unwrap();
        assert_eq!(old.value.numeric(), 1);
        assert_eq!(old.installed_by, Some(TxnId(1)));
        let cur = db.read_version(ObjectId(1), c2.version).unwrap();
        assert_eq!(cur.value.numeric(), 2);
        assert!(db.read_version(ObjectId(1), Version(999)).is_none());
        assert!(db.read_version(ObjectId(99), c1.version).is_none());
    }

    #[test]
    fn stats_classify_reads_by_path() {
        let db = db_with(10, 3);
        db.read_entry(ObjectId(1)).unwrap();
        db.execute_update(TxnId(1), &vec![2u64, 3].into()).unwrap();
        let snap = db.stats();
        // Every store snapshot was optimistic and uncontended in this
        // single-threaded test: the miss read (1), the update's
        // read-modify-write pre-reads (2), the dependency-aggregation
        // reads (2) and the prepare-phase existence checks (2).
        assert_eq!(snap.read_path.optimistic_hits, 7);
        assert_eq!(snap.read_path.optimistic_retries, 0);
        assert_eq!(snap.read_path.lock_fallbacks, 0);
        assert_eq!(snap.read_path.locked_reads, 0);
        assert_eq!(snap.optimistic_hit_ratio(), 1.0);

        let locked = Database::new(DatabaseConfig::with_bound(3).read_path(ReadPath::Locked));
        locked.populate((0..4).map(|i| (ObjectId(i), Value::new(0))));
        locked.read_entry(ObjectId(0)).unwrap();
        let snap = locked.stats();
        assert_eq!(snap.read_path.locked_reads, 1);
        assert_eq!(snap.read_path.optimistic_hits, 0);
        assert_eq!(snap.optimistic_hit_ratio(), 0.0);
        assert_eq!(locked.config().read_path, ReadPath::Locked);
    }

    #[test]
    fn multi_shard_stats_aggregate_every_store() {
        let config = DatabaseConfig {
            shards: 4,
            dependency_bound: DependencyBound::Bounded(3),
            ..DatabaseConfig::default()
        };
        let db = Database::new(config);
        db.populate((0..16).map(|i| (ObjectId(i), Value::new(0))));
        for i in 0..16 {
            db.read_entry(ObjectId(i)).unwrap();
        }
        assert_eq!(db.stats().read_path.optimistic_hits, 16);
    }

    #[test]
    fn footprint_reflects_dependency_storage() {
        let db = db_with(10, 5);
        let before = db.footprint_bytes();
        db.execute_update(TxnId(1), &vec![0u64, 1, 2, 3, 4].into()).unwrap();
        assert!(db.footprint_bytes() > before);
    }
}
