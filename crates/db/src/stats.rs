//! Database-side statistics.
//!
//! The evaluation cares about the *load on the backend database* — the
//! number of reads it serves (cache misses plus update-transaction reads)
//! and the rate of committed update transactions. The counters here are
//! atomics so any component holding a reference to the database can sample
//! them cheaply.
//!
//! The snapshot additionally carries the read-path classification from the
//! shards' stores ([`ReadPathStatsSnapshot`]): how many snapshots were
//! served optimistically, how often readers raced a writer and retried,
//! and how often they fell back to the blocking lock — the observability
//! for the seqlock read path (see [`crate::store`]).

use crate::store::ReadPathStatsSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counters describing the load placed on the database.
#[derive(Debug, Default)]
pub struct DbStats {
    single_reads: AtomicU64,
    update_reads: AtomicU64,
    updates_committed: AtomicU64,
    updates_aborted: AtomicU64,
    objects_written: AtomicU64,
    invalidations_published: AtomicU64,
}

/// A point-in-time copy of [`DbStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DbStatsSnapshot {
    /// Single-object reads served (cache misses and read-throughs).
    pub single_reads: u64,
    /// Reads performed on behalf of update transactions.
    pub update_reads: u64,
    /// Update transactions committed.
    pub updates_committed: u64,
    /// Update transactions aborted by concurrency control.
    pub updates_aborted: u64,
    /// Objects written by committed update transactions.
    pub objects_written: u64,
    /// Invalidation records published.
    pub invalidations_published: u64,
    /// Read-path classification aggregated over every shard's store:
    /// optimistic hits, retries, lock fallbacks and locked reads.
    pub read_path: ReadPathStatsSnapshot,
}

impl DbStatsSnapshot {
    /// Total read operations served by the database.
    pub fn total_reads(&self) -> u64 {
        self.single_reads + self.update_reads
    }

    /// Fraction of store snapshots served optimistically (without blocking
    /// or falling back to the lock); `1.0` when no snapshot was taken.
    pub fn optimistic_hit_ratio(&self) -> f64 {
        let total = self.read_path.optimistic_hits + self.read_path.lock_fallbacks
            + self.read_path.locked_reads;
        if total == 0 {
            return 1.0;
        }
        self.read_path.optimistic_hits as f64 / total as f64
    }
}

impl DbStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        DbStats::default()
    }

    /// Records a single-object read served for a cache.
    pub fn record_single_read(&self) {
        self.single_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` reads performed by an update transaction.
    pub fn record_update_reads(&self, n: u64) {
        self.update_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a committed update transaction that wrote `objects` objects.
    pub fn record_update_commit(&self, objects: u64) {
        self.updates_committed.fetch_add(1, Ordering::Relaxed);
        self.objects_written.fetch_add(objects, Ordering::Relaxed);
    }

    /// Records an aborted update transaction.
    pub fn record_update_abort(&self) {
        self.updates_aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` published invalidations.
    pub fn record_invalidations(&self, n: u64) {
        self.invalidations_published.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot of all counters. The read-path
    /// classification is zero here; [`Database::stats`] merges in the
    /// per-shard store counters.
    ///
    /// [`Database::stats`]: crate::database::Database::stats
    pub fn snapshot(&self) -> DbStatsSnapshot {
        DbStatsSnapshot {
            single_reads: self.single_reads.load(Ordering::Relaxed),
            update_reads: self.update_reads.load(Ordering::Relaxed),
            updates_committed: self.updates_committed.load(Ordering::Relaxed),
            updates_aborted: self.updates_aborted.load(Ordering::Relaxed),
            objects_written: self.objects_written.load(Ordering::Relaxed),
            invalidations_published: self.invalidations_published.load(Ordering::Relaxed),
            read_path: ReadPathStatsSnapshot::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = DbStats::new();
        s.record_single_read();
        s.record_single_read();
        s.record_update_reads(5);
        s.record_update_commit(5);
        s.record_update_abort();
        s.record_invalidations(5);
        let snap = s.snapshot();
        assert_eq!(snap.single_reads, 2);
        assert_eq!(snap.update_reads, 5);
        assert_eq!(snap.total_reads(), 7);
        assert_eq!(snap.updates_committed, 1);
        assert_eq!(snap.updates_aborted, 1);
        assert_eq!(snap.objects_written, 5);
        assert_eq!(snap.invalidations_published, 5);
    }

    #[test]
    fn default_snapshot_is_zero() {
        let snap = DbStats::default().snapshot();
        assert_eq!(snap, DbStatsSnapshot::default());
        assert_eq!(snap.total_reads(), 0);
        assert_eq!(snap.optimistic_hit_ratio(), 1.0, "vacuously all-optimistic");
    }

    #[test]
    fn optimistic_hit_ratio_counts_fallbacks_and_locked_reads() {
        let snap = DbStatsSnapshot {
            read_path: ReadPathStatsSnapshot {
                optimistic_hits: 3,
                optimistic_retries: 10,
                optimistic_races: 2,
                lock_fallbacks: 1,
                locked_reads: 0,
            },
            ..DbStatsSnapshot::default()
        };
        assert_eq!(snap.optimistic_hit_ratio(), 0.75, "retries are not snapshots");
    }
}
