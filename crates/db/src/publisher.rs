//! Per-cache invalidation upcall registry.
//!
//! "On startup, the cache registers an upcall that can be used by the
//! database to report invalidations; after each update transaction, the
//! database asynchronously sends invalidations to the cache for all objects
//! that were modified" (§IV). With several edge caches, the database fans
//! every committed update's invalidation batch out to *all* registered
//! caches; each cache's delivery pipe then drops or delays messages
//! independently (that unreliability lives in `tcache-net`, not here).

use crate::invalidation::InvalidationBatch;
use parking_lot::RwLock;
use std::fmt;
use tcache_types::CacheId;

/// An upcall receiving every published invalidation batch for one cache.
pub type InvalidationSink = Box<dyn Fn(&InvalidationBatch) + Send + Sync>;

/// Registry of per-cache invalidation upcalls.
///
/// Registration order is preserved and publication iterates it
/// deterministically. A sink must not call back into the publisher (the
/// registry lock is held, shared, while sinks run).
#[derive(Default)]
pub struct InvalidationPublisher {
    sinks: RwLock<Vec<(CacheId, InvalidationSink)>>,
}

impl fmt::Debug for InvalidationPublisher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InvalidationPublisher")
            .field("registered", &self.registered_caches())
            .finish()
    }
}

impl InvalidationPublisher {
    /// Creates an empty registry.
    pub fn new() -> Self {
        InvalidationPublisher::default()
    }

    /// Registers `cache`'s upcall. A second registration for the same cache
    /// replaces the first (a cache re-registering after a restart).
    pub fn register(&self, cache: CacheId, sink: InvalidationSink) {
        let mut sinks = self.sinks.write();
        if let Some(slot) = sinks.iter_mut().find(|(id, _)| *id == cache) {
            slot.1 = sink;
        } else {
            sinks.push((cache, sink));
        }
    }

    /// Removes `cache`'s upcall; returns `true` if one was registered.
    pub fn unregister(&self, cache: CacheId) -> bool {
        let mut sinks = self.sinks.write();
        let before = sinks.len();
        sinks.retain(|(id, _)| *id != cache);
        sinks.len() != before
    }

    /// The caches currently registered, in registration order.
    pub fn registered_caches(&self) -> Vec<CacheId> {
        self.sinks.read().iter().map(|&(id, _)| id).collect()
    }

    /// Fans one batch out to every registered cache. Empty batches are not
    /// published (an update that installed nothing invalidates nothing).
    pub fn publish(&self, batch: &InvalidationBatch) {
        if batch.is_empty() {
            return;
        }
        for (_, sink) in self.sinks.read().iter() {
            sink(batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invalidation::Invalidation;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use tcache_types::{ObjectId, TxnId, Version};

    fn batch(n: u64) -> InvalidationBatch {
        (0..n)
            .map(|i| Invalidation::new(ObjectId(i), Version(1), TxnId(1)))
            .collect()
    }

    fn counting_sink(counter: &Arc<AtomicU64>) -> InvalidationSink {
        let counter = Arc::clone(counter);
        Box::new(move |b: &InvalidationBatch| {
            counter.fetch_add(b.len() as u64, Ordering::Relaxed);
        })
    }

    #[test]
    fn publish_fans_out_to_every_registered_cache() {
        let publisher = InvalidationPublisher::new();
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        publisher.register(CacheId(0), counting_sink(&a));
        publisher.register(CacheId(1), counting_sink(&b));
        assert_eq!(publisher.registered_caches(), vec![CacheId(0), CacheId(1)]);
        publisher.publish(&batch(3));
        assert_eq!(a.load(Ordering::Relaxed), 3);
        assert_eq!(b.load(Ordering::Relaxed), 3);
        // Empty batches are suppressed.
        publisher.publish(&InvalidationBatch::default());
        assert_eq!(a.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn reregistration_replaces_and_unregister_removes() {
        let publisher = InvalidationPublisher::new();
        let first = Arc::new(AtomicU64::new(0));
        let second = Arc::new(AtomicU64::new(0));
        publisher.register(CacheId(7), counting_sink(&first));
        publisher.register(CacheId(7), counting_sink(&second));
        publisher.publish(&batch(2));
        assert_eq!(first.load(Ordering::Relaxed), 0, "replaced sink is gone");
        assert_eq!(second.load(Ordering::Relaxed), 2);
        assert!(publisher.unregister(CacheId(7)));
        assert!(!publisher.unregister(CacheId(7)));
        publisher.publish(&batch(2));
        assert_eq!(second.load(Ordering::Relaxed), 2);
        assert!(format!("{publisher:?}").contains("registered"));
    }
}
