//! Per-cache invalidation upcall registry.
//!
//! "On startup, the cache registers an upcall that can be used by the
//! database to report invalidations; after each update transaction, the
//! database asynchronously sends invalidations to the cache for all objects
//! that were modified" (§IV). With several edge caches, the database fans
//! every committed update's invalidation batch out to *all* registered
//! caches; each cache's delivery pipe then drops or delays messages
//! independently (that unreliability lives in `tcache-net`, not here).
//!
//! Because publication runs on the committing transaction's thread, a slow
//! or full pipe behind an upcall stretches commit latency. The registry
//! therefore measures every sink call and accumulates per-cache
//! [`PublishStats`]: how long publication took, and — for sinks registered
//! with [`InvalidationPublisher::register_reporting`] — how many messages a
//! bounded pipe overflowed or stalled on. That is the attribution trail for
//! "commits are slow because cache X's invalidation pipe is backed up".

use crate::invalidation::InvalidationBatch;
use parking_lot::RwLock;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tcache_types::CacheId;

/// An upcall receiving every published invalidation batch for one cache.
pub type InvalidationSink = Box<dyn Fn(&InvalidationBatch) + Send + Sync>;

/// An upcall that reports what its delivery pipe did with the batch, so
/// overflow and stalls can be attributed to the publishing side.
pub type ReportingSink = Box<dyn Fn(&InvalidationBatch) -> SinkReport + Send + Sync>;

/// What one sink call did with a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SinkReport {
    /// Invalidations actually enqueued onto the cache's pipe.
    pub enqueued: u64,
    /// Invalidations lost because the pipe was at capacity.
    pub overflowed: u64,
    /// Whether the send had to wait for pipe capacity (backpressure into
    /// the commit path).
    pub stalled: bool,
    /// Send attempts repeated after an initial failure (the sink's retry
    /// backoff re-offering a batch to a disconnected cache's pipe).
    pub retries: u64,
    /// Invalidations given up on after the retry budget was exhausted.
    pub abandoned: u64,
    /// Invalidations not delivered because the cache's link was severed
    /// (crashed or partitioned) for the whole retry window.
    pub severed: u64,
}

/// Monotone per-cache publication counters.
#[derive(Debug, Default)]
struct PublishCounters {
    batches: AtomicU64,
    invalidations: AtomicU64,
    enqueued: AtomicU64,
    overflowed: AtomicU64,
    stalled_publishes: AtomicU64,
    publish_nanos: AtomicU64,
    retries: AtomicU64,
    abandoned: AtomicU64,
    severed: AtomicU64,
}

/// A point-in-time copy of one cache's publication counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PublishStats {
    /// Batches published to this cache's upcall.
    pub batches: u64,
    /// Invalidations offered to the upcall (batch sizes summed).
    pub invalidations: u64,
    /// Invalidations the upcall reported as enqueued on the pipe.
    pub enqueued: u64,
    /// Invalidations the upcall reported as lost to pipe overflow.
    pub overflowed: u64,
    /// Publishes during which the pipe exerted backpressure (stalled).
    pub stalled_publishes: u64,
    /// Total wall-clock time spent inside this cache's upcall, in
    /// nanoseconds — commit latency attributable to this pipe.
    pub publish_nanos: u64,
    /// Send attempts repeated after an initial failure (retry backoff
    /// toward a disconnected cache).
    pub retries: u64,
    /// Invalidations abandoned after the retry budget ran out.
    pub abandoned: u64,
    /// Invalidations dropped at the publisher because the cache's link was
    /// severed (crash or partition) for the whole retry window.
    pub severed: u64,
}

impl PublishCounters {
    fn record(&self, batch_len: u64, report: SinkReport, nanos: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.invalidations.fetch_add(batch_len, Ordering::Relaxed);
        self.enqueued.fetch_add(report.enqueued, Ordering::Relaxed);
        self.overflowed.fetch_add(report.overflowed, Ordering::Relaxed);
        if report.stalled {
            self.stalled_publishes.fetch_add(1, Ordering::Relaxed);
        }
        self.publish_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.retries.fetch_add(report.retries, Ordering::Relaxed);
        self.abandoned.fetch_add(report.abandoned, Ordering::Relaxed);
        self.severed.fetch_add(report.severed, Ordering::Relaxed);
    }

    fn snapshot(&self) -> PublishStats {
        PublishStats {
            batches: self.batches.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            enqueued: self.enqueued.load(Ordering::Relaxed),
            overflowed: self.overflowed.load(Ordering::Relaxed),
            stalled_publishes: self.stalled_publishes.load(Ordering::Relaxed),
            publish_nanos: self.publish_nanos.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            abandoned: self.abandoned.load(Ordering::Relaxed),
            severed: self.severed.load(Ordering::Relaxed),
        }
    }
}

struct Registration {
    cache: CacheId,
    sink: ReportingSink,
    counters: Arc<PublishCounters>,
}

/// Registry of per-cache invalidation upcalls.
///
/// Registration order is preserved and publication iterates it
/// deterministically. A sink must not call back into the publisher (the
/// registry lock is held, shared, while sinks run).
#[derive(Default)]
pub struct InvalidationPublisher {
    sinks: RwLock<Vec<Registration>>,
}

impl fmt::Debug for InvalidationPublisher {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InvalidationPublisher")
            .field("registered", &self.registered_caches())
            .finish()
    }
}

impl InvalidationPublisher {
    /// Creates an empty registry.
    pub fn new() -> Self {
        InvalidationPublisher::default()
    }

    /// Registers `cache`'s upcall. A second registration for the same cache
    /// replaces the first (a cache re-registering after a restart) but
    /// keeps its accumulated [`PublishStats`].
    ///
    /// A sink registered here reports nothing back; its batches are counted
    /// as fully enqueued. Use
    /// [`InvalidationPublisher::register_reporting`] when the sink can
    /// report pipe overflow and stalls.
    pub fn register(&self, cache: CacheId, sink: InvalidationSink) {
        self.register_reporting(
            cache,
            Box::new(move |batch| {
                sink(batch);
                SinkReport {
                    enqueued: batch.len() as u64,
                    ..SinkReport::default()
                }
            }),
        );
    }

    /// Registers an upcall that reports what its pipe did with each batch
    /// (see [`SinkReport`]); the registry accumulates the reports into the
    /// cache's [`PublishStats`].
    pub fn register_reporting(&self, cache: CacheId, sink: ReportingSink) {
        let mut sinks = self.sinks.write();
        if let Some(slot) = sinks.iter_mut().find(|r| r.cache == cache) {
            slot.sink = sink;
        } else {
            sinks.push(Registration {
                cache,
                sink,
                counters: Arc::new(PublishCounters::default()),
            });
        }
    }

    /// Removes `cache`'s upcall; returns `true` if one was registered.
    pub fn unregister(&self, cache: CacheId) -> bool {
        let mut sinks = self.sinks.write();
        let before = sinks.len();
        sinks.retain(|r| r.cache != cache);
        sinks.len() != before
    }

    /// The caches currently registered, in registration order.
    pub fn registered_caches(&self) -> Vec<CacheId> {
        self.sinks.read().iter().map(|r| r.cache).collect()
    }

    /// Per-cache publication statistics, in registration order.
    pub fn publish_stats(&self) -> Vec<(CacheId, PublishStats)> {
        self.sinks
            .read()
            .iter()
            .map(|r| (r.cache, r.counters.snapshot()))
            .collect()
    }

    /// One cache's publication statistics, if registered.
    pub fn publish_stats_for(&self, cache: CacheId) -> Option<PublishStats> {
        self.sinks
            .read()
            .iter()
            .find(|r| r.cache == cache)
            .map(|r| r.counters.snapshot())
    }

    /// Fans one batch out to every registered cache, timing each sink call
    /// so slow pipes are attributable. Empty batches are not published (an
    /// update that installed nothing invalidates nothing).
    pub fn publish(&self, batch: &InvalidationBatch) {
        if batch.is_empty() {
            return;
        }
        for registration in self.sinks.read().iter() {
            let started = Instant::now();
            let report = (registration.sink)(batch);
            // Accumulate nanoseconds: a sub-microsecond sink must still
            // leave a nonzero trace after many publishes.
            let nanos =
                u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            registration
                .counters
                .record(batch.len() as u64, report, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invalidation::Invalidation;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use tcache_types::{ObjectId, TxnId, Version};

    fn batch(n: u64) -> InvalidationBatch {
        (0..n)
            .map(|i| Invalidation::new(ObjectId(i), Version(1), TxnId(1)))
            .collect()
    }

    fn counting_sink(counter: &Arc<AtomicU64>) -> InvalidationSink {
        let counter = Arc::clone(counter);
        Box::new(move |b: &InvalidationBatch| {
            counter.fetch_add(b.len() as u64, Ordering::Relaxed);
        })
    }

    #[test]
    fn publish_fans_out_to_every_registered_cache() {
        let publisher = InvalidationPublisher::new();
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        publisher.register(CacheId(0), counting_sink(&a));
        publisher.register(CacheId(1), counting_sink(&b));
        assert_eq!(publisher.registered_caches(), vec![CacheId(0), CacheId(1)]);
        publisher.publish(&batch(3));
        assert_eq!(a.load(Ordering::Relaxed), 3);
        assert_eq!(b.load(Ordering::Relaxed), 3);
        // Empty batches are suppressed.
        publisher.publish(&InvalidationBatch::default());
        assert_eq!(a.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn reregistration_replaces_and_unregister_removes() {
        let publisher = InvalidationPublisher::new();
        let first = Arc::new(AtomicU64::new(0));
        let second = Arc::new(AtomicU64::new(0));
        publisher.register(CacheId(7), counting_sink(&first));
        publisher.register(CacheId(7), counting_sink(&second));
        publisher.publish(&batch(2));
        assert_eq!(first.load(Ordering::Relaxed), 0, "replaced sink is gone");
        assert_eq!(second.load(Ordering::Relaxed), 2);
        assert!(publisher.unregister(CacheId(7)));
        assert!(!publisher.unregister(CacheId(7)));
        publisher.publish(&batch(2));
        assert_eq!(second.load(Ordering::Relaxed), 2);
        assert!(format!("{publisher:?}").contains("registered"));
    }

    #[test]
    fn plain_sinks_count_batches_as_fully_enqueued() {
        let publisher = InvalidationPublisher::new();
        let a = Arc::new(AtomicU64::new(0));
        publisher.register(CacheId(0), counting_sink(&a));
        publisher.publish(&batch(3));
        publisher.publish(&batch(2));
        let stats = publisher.publish_stats_for(CacheId(0)).unwrap();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.invalidations, 5);
        assert_eq!(stats.enqueued, 5);
        assert_eq!(stats.overflowed, 0);
        assert_eq!(stats.stalled_publishes, 0);
        assert!(publisher.publish_stats_for(CacheId(9)).is_none());
    }

    #[test]
    fn reporting_sinks_attribute_overflow_and_stalls() {
        let publisher = InvalidationPublisher::new();
        publisher.register_reporting(
            CacheId(0),
            Box::new(|b: &InvalidationBatch| {
                // Model a pipe that admits one message per batch and stalls
                // (test-only: the stall is the behaviour under test).
                #[allow(clippy::disallowed_methods)]
                std::thread::sleep(std::time::Duration::from_millis(2));
                SinkReport {
                    enqueued: 1,
                    overflowed: b.len() as u64 - 1,
                    stalled: true,
                    retries: 2,
                    abandoned: 1,
                    severed: 1,
                }
            }),
        );
        publisher.publish(&batch(4));
        publisher.publish(&batch(4));
        let all = publisher.publish_stats();
        assert_eq!(all.len(), 1);
        let (cache, stats) = all[0];
        assert_eq!(cache, CacheId(0));
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.invalidations, 8);
        assert_eq!(stats.enqueued, 2);
        assert_eq!(stats.overflowed, 6);
        assert_eq!(stats.stalled_publishes, 2);
        assert_eq!(stats.retries, 4);
        assert_eq!(stats.abandoned, 2);
        assert_eq!(stats.severed, 2);
        assert!(
            stats.publish_nanos >= 4_000_000,
            "publish time accumulates: {}",
            stats.publish_nanos
        );
    }

    #[test]
    fn reregistration_keeps_accumulated_stats() {
        let publisher = InvalidationPublisher::new();
        let a = Arc::new(AtomicU64::new(0));
        publisher.register(CacheId(3), counting_sink(&a));
        publisher.publish(&batch(2));
        publisher.register(CacheId(3), counting_sink(&a));
        publisher.publish(&batch(1));
        let stats = publisher.publish_stats_for(CacheId(3)).unwrap();
        assert_eq!(stats.batches, 2, "stats survive re-registration");
        assert_eq!(stats.invalidations, 3);
    }
}
