//! Error types shared across the T-Cache crates.

use crate::ids::{CacheId, ObjectId, TxnId};
use std::error::Error;
use std::fmt;

/// Convenient result alias using [`TCacheError`].
pub type TCacheResult<T> = Result<T, TCacheError>;

/// Errors produced by the database, the cache and the experiment harness.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TCacheError {
    /// The requested object does not exist in the database.
    UnknownObject(ObjectId),
    /// A read-only transaction observed (or would observe) inconsistent
    /// data and was aborted by the cache.
    InconsistencyAbort {
        /// The aborted transaction.
        txn: TxnId,
        /// The object whose stale version triggered the abort.
        violating_object: ObjectId,
    },
    /// An update transaction was aborted by the database concurrency
    /// control (lock conflict or deadlock avoidance).
    UpdateAborted {
        /// The aborted transaction.
        txn: TxnId,
        /// Human readable reason.
        reason: ConflictReason,
    },
    /// The transaction id is not known to the component (e.g. a commit for
    /// a transaction that was never started, or a read after `last_op`).
    UnknownTransaction(TxnId),
    /// The addressed cache server is not deployed in this system.
    UnknownCache(CacheId),
    /// The operation is invalid in the component's current state.
    InvalidOperation(&'static str),
    /// The cache is configured without a backing database connection and a
    /// miss cannot be served.
    NoBackend,
    /// The operation needs a transport capability the system was not built
    /// with (e.g. pausing a reactor apply task on a threaded-transport
    /// system). Distinct from [`TCacheError::UnknownCache`]: the cache may
    /// well be deployed — the *transport* cannot perform the operation.
    UnsupportedTransport {
        /// The operation that was requested.
        operation: &'static str,
    },
    /// The cache is deployed and the transport supports the operation, but
    /// the cache's lifecycle state forbids it (e.g. resuming a cache that
    /// was never paused, or pausing one that has crashed).
    InvalidCacheState {
        /// The cache the operation addressed.
        cache: CacheId,
        /// The operation that was requested.
        operation: &'static str,
        /// The state that forbids it.
        state: &'static str,
    },
}

/// Why the database aborted an update transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConflictReason {
    /// A lock could not be acquired because another in-flight transaction
    /// holds it.
    LockConflict,
    /// The two-phase-commit prepare phase was rejected by a shard.
    PrepareRejected,
    /// Deadlock avoidance (wound-wait / no-wait) killed the transaction.
    DeadlockAvoidance,
}

impl fmt::Display for ConflictReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConflictReason::LockConflict => write!(f, "lock conflict"),
            ConflictReason::PrepareRejected => write!(f, "prepare rejected"),
            ConflictReason::DeadlockAvoidance => write!(f, "deadlock avoidance"),
        }
    }
}

impl fmt::Display for TCacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TCacheError::UnknownObject(o) => write!(f, "unknown object {o}"),
            TCacheError::InconsistencyAbort {
                txn,
                violating_object,
            } => write!(
                f,
                "transaction {txn} aborted: inconsistency involving {violating_object}"
            ),
            TCacheError::UpdateAborted { txn, reason } => {
                write!(f, "update transaction {txn} aborted: {reason}")
            }
            TCacheError::UnknownTransaction(t) => write!(f, "unknown transaction {t}"),
            TCacheError::UnknownCache(c) => write!(f, "unknown cache server {c}"),
            TCacheError::InvalidOperation(msg) => write!(f, "invalid operation: {msg}"),
            TCacheError::NoBackend => write!(f, "cache has no backend database configured"),
            TCacheError::UnsupportedTransport { operation } => {
                write!(f, "transport does not support {operation}")
            }
            TCacheError::InvalidCacheState {
                cache,
                operation,
                state,
            } => {
                write!(f, "cannot {operation} {cache}: cache is {state}")
            }
        }
    }
}

impl Error for TCacheError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TCacheError::UnknownObject(ObjectId(4));
        assert!(e.to_string().contains("o4"));
        let e = TCacheError::InconsistencyAbort {
            txn: TxnId(1),
            violating_object: ObjectId(2),
        };
        assert!(e.to_string().contains("t1"));
        assert!(e.to_string().contains("o2"));
        let e = TCacheError::UpdateAborted {
            txn: TxnId(9),
            reason: ConflictReason::LockConflict,
        };
        assert!(e.to_string().contains("lock conflict"));
        assert!(TCacheError::NoBackend.to_string().contains("backend"));
        assert!(TCacheError::UnknownTransaction(TxnId(5)).to_string().contains("t5"));
        assert!(TCacheError::UnknownCache(CacheId(3)).to_string().contains("cache3"));
        assert!(TCacheError::InvalidOperation("x").to_string().contains("x"));
        let e = TCacheError::UnsupportedTransport {
            operation: "pause_cache",
        };
        assert!(e.to_string().contains("pause_cache"));
        let e = TCacheError::InvalidCacheState {
            cache: CacheId(2),
            operation: "resume",
            state: "not paused",
        };
        assert!(e.to_string().contains("cache2"));
        assert!(e.to_string().contains("resume"));
        assert!(e.to_string().contains("not paused"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_error(TCacheError::NoBackend);
    }

    #[test]
    fn conflict_reason_display() {
        assert_eq!(ConflictReason::PrepareRejected.to_string(), "prepare rejected");
        assert_eq!(
            ConflictReason::DeadlockAvoidance.to_string(),
            "deadlock avoidance"
        );
    }
}
