//! Read/write sets and transaction records.
//!
//! These types describe what a transaction accessed: the database uses them
//! to aggregate dependency lists at commit (§III-A), the cache uses them to
//! evaluate the violation predicates (§III-B), and the consistency monitor
//! uses them to build the serialization graph (§IV).

use crate::dependency::DependencyList;
use crate::entry::VersionedObject;
use crate::ids::{CacheId, ObjectId, TxnId, Version};
use crate::time::SimTime;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Whether a transaction updates the database or only reads from a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransactionKind {
    /// An update transaction executed directly against the backend database.
    Update,
    /// A read-only transaction executed against an edge cache.
    ReadOnly,
}

impl fmt::Display for TransactionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransactionKind::Update => write!(f, "update"),
            TransactionKind::ReadOnly => write!(f, "read-only"),
        }
    }
}

/// The set of objects a generated workload transaction will access,
/// in access order (duplicates allowed, mirroring the paper's synthetic
/// workloads that pick "5 times with repetitions").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct AccessSet {
    objects: Vec<ObjectId>,
}

impl AccessSet {
    /// Creates an access set from an ordered list of objects.
    pub fn new(objects: Vec<ObjectId>) -> Self {
        AccessSet { objects }
    }

    /// The objects in access order.
    pub fn objects(&self) -> &[ObjectId] {
        &self.objects
    }

    /// Number of accesses (including repetitions).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the access set is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The distinct objects accessed, in first-access order.
    pub fn distinct(&self) -> Vec<ObjectId> {
        let mut seen = Vec::new();
        for &o in &self.objects {
            if !seen.contains(&o) {
                seen.push(o);
            }
        }
        seen
    }

    /// Iterates over the accesses in order.
    pub fn iter(&self) -> impl Iterator<Item = &ObjectId> {
        self.objects.iter()
    }
}

impl FromIterator<ObjectId> for AccessSet {
    fn from_iter<T: IntoIterator<Item = ObjectId>>(iter: T) -> Self {
        AccessSet::new(iter.into_iter().collect())
    }
}

impl From<Vec<u64>> for AccessSet {
    fn from(v: Vec<u64>) -> Self {
        AccessSet::new(v.into_iter().map(ObjectId).collect())
    }
}

/// A single read performed by a transaction, with the version observed and
/// the dependency list attached to that version.
///
/// The dependency list is shared with the cache/store entry it was read
/// from (`Arc`), so recording a read never deep-copies dependency data.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadRecord {
    /// The object read.
    pub object: ObjectId,
    /// The version observed.
    pub version: Version,
    /// The dependency list attached to the observed version.
    pub dependencies: Arc<DependencyList>,
}

impl ReadRecord {
    /// Creates a read record. Accepts either an owned [`DependencyList`] or
    /// an already shared `Arc<DependencyList>`.
    pub fn new(
        object: ObjectId,
        version: Version,
        dependencies: impl Into<Arc<DependencyList>>,
    ) -> Self {
        ReadRecord {
            object,
            version,
            dependencies: dependencies.into(),
        }
    }
}

/// A single write performed by an update transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteRecord {
    /// The object written.
    pub object: ObjectId,
    /// The new value.
    pub value: Value,
}

impl WriteRecord {
    /// Creates a write record.
    pub fn new(object: ObjectId, value: Value) -> Self {
        WriteRecord { object, value }
    }
}

/// The ordered set of reads performed so far by a transaction.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReadSet {
    reads: Vec<ReadRecord>,
}

impl ReadSet {
    /// Creates an empty read set.
    pub fn new() -> Self {
        ReadSet::default()
    }

    /// Adds a read to the set.
    pub fn push(&mut self, read: ReadRecord) {
        self.reads.push(read);
    }

    /// All reads in order.
    pub fn reads(&self) -> &[ReadRecord] {
        &self.reads
    }

    /// Number of reads recorded.
    pub fn len(&self) -> usize {
        self.reads.len()
    }

    /// Whether no reads have been recorded.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
    }

    /// Returns the version observed for `object`, if this transaction has
    /// read it. If the object was read multiple times the **largest**
    /// observed version is returned (reads of the same object can legally
    /// observe increasing versions within a serializable history only if
    /// they are equal; the cache checks that separately).
    pub fn version_of(&self, object: ObjectId) -> Option<Version> {
        self.reads
            .iter()
            .filter(|r| r.object == object)
            .map(|r| r.version)
            .max()
    }

    /// Iterates over the reads in order.
    pub fn iter(&self) -> impl Iterator<Item = &ReadRecord> {
        self.reads.iter()
    }
}

/// The ordered set of writes an update transaction intends to apply.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WriteSet {
    writes: Vec<WriteRecord>,
}

impl WriteSet {
    /// Creates an empty write set.
    pub fn new() -> Self {
        WriteSet::default()
    }

    /// Adds a write, replacing any earlier write to the same object
    /// (last-writer-wins within a transaction).
    pub fn push(&mut self, write: WriteRecord) {
        if let Some(existing) = self.writes.iter_mut().find(|w| w.object == write.object) {
            existing.value = write.value;
        } else {
            self.writes.push(write);
        }
    }

    /// All writes in order of first write per object.
    pub fn writes(&self) -> &[WriteRecord] {
        &self.writes
    }

    /// Number of distinct objects written.
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// Whether no writes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// Returns `true` if `object` is written by this set.
    pub fn contains(&self, object: ObjectId) -> bool {
        self.writes.iter().any(|w| w.object == object)
    }

    /// Iterates over the writes.
    pub fn iter(&self) -> impl Iterator<Item = &WriteRecord> {
        self.writes.iter()
    }
}

/// The outcome of a read-only transaction executed against a cache.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReadOnlyOutcome {
    /// All reads completed; the values observed are returned in read order.
    Committed(Vec<VersionedObject>),
    /// The cache detected an inconsistency and aborted the transaction.
    Aborted {
        /// The object whose stale version triggered the abort.
        violating_object: ObjectId,
    },
}

impl ReadOnlyOutcome {
    /// Returns `true` if the transaction committed.
    pub fn is_committed(&self) -> bool {
        matches!(self, ReadOnlyOutcome::Committed(_))
    }

    /// Returns `true` if the transaction was aborted.
    pub fn is_aborted(&self) -> bool {
        !self.is_committed()
    }

    /// Returns the observed values if committed.
    pub fn values(&self) -> Option<&[VersionedObject]> {
        match self {
            ReadOnlyOutcome::Committed(v) => Some(v),
            ReadOnlyOutcome::Aborted { .. } => None,
        }
    }
}

/// A completed (committed or aborted) transaction as reported to the
/// consistency monitor.
///
/// For update transactions `writes` carries the versions installed; for
/// read-only transactions it is empty. `reads` carries the versions
/// observed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransactionRecord {
    /// The transaction id.
    pub id: TxnId,
    /// Update or read-only.
    pub kind: TransactionKind,
    /// The cache through which a read-only transaction executed, if any.
    pub cache: Option<CacheId>,
    /// `(object, version observed)` for every read.
    pub reads: Vec<(ObjectId, Version)>,
    /// `(object, version installed)` for every write.
    pub writes: Vec<(ObjectId, Version)>,
    /// Whether the transaction committed.
    pub committed: bool,
    /// Simulated completion time.
    pub completed_at: SimTime,
}

impl TransactionRecord {
    /// Creates a record for a committed update transaction.
    pub fn update_committed(
        id: TxnId,
        reads: Vec<(ObjectId, Version)>,
        writes: Vec<(ObjectId, Version)>,
        completed_at: SimTime,
    ) -> Self {
        TransactionRecord {
            id,
            kind: TransactionKind::Update,
            cache: None,
            reads,
            writes,
            committed: true,
            completed_at,
        }
    }

    /// Creates a record for a read-only transaction executed at `cache`.
    pub fn read_only(
        id: TxnId,
        cache: CacheId,
        reads: Vec<(ObjectId, Version)>,
        committed: bool,
        completed_at: SimTime,
    ) -> Self {
        TransactionRecord {
            id,
            kind: TransactionKind::ReadOnly,
            cache: Some(cache),
            reads,
            writes: Vec::new(),
            committed,
            completed_at,
        }
    }

    /// Returns `true` if this record describes an update transaction.
    pub fn is_update(&self) -> bool {
        self.kind == TransactionKind::Update
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_set_distinct_preserves_order() {
        let a: AccessSet = vec![3u64, 1, 3, 2, 1].into();
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert_eq!(
            a.distinct(),
            vec![ObjectId(3), ObjectId(1), ObjectId(2)]
        );
        assert_eq!(a.iter().count(), 5);
        let b: AccessSet = a.objects().iter().copied().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn read_set_version_of_returns_max() {
        let mut rs = ReadSet::new();
        assert!(rs.is_empty());
        rs.push(ReadRecord::new(
            ObjectId(1),
            Version(4),
            DependencyList::bounded(0),
        ));
        rs.push(ReadRecord::new(
            ObjectId(1),
            Version(6),
            DependencyList::bounded(0),
        ));
        rs.push(ReadRecord::new(
            ObjectId(2),
            Version(1),
            DependencyList::bounded(0),
        ));
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.version_of(ObjectId(1)), Some(Version(6)));
        assert_eq!(rs.version_of(ObjectId(2)), Some(Version(1)));
        assert_eq!(rs.version_of(ObjectId(3)), None);
        assert_eq!(rs.iter().count(), 3);
        assert_eq!(rs.reads().len(), 3);
    }

    #[test]
    fn write_set_is_last_writer_wins_per_object() {
        let mut ws = WriteSet::new();
        assert!(ws.is_empty());
        ws.push(WriteRecord::new(ObjectId(1), Value::new(1)));
        ws.push(WriteRecord::new(ObjectId(2), Value::new(2)));
        ws.push(WriteRecord::new(ObjectId(1), Value::new(9)));
        assert_eq!(ws.len(), 2);
        assert!(ws.contains(ObjectId(1)));
        assert!(!ws.contains(ObjectId(3)));
        let v1 = ws
            .iter()
            .find(|w| w.object == ObjectId(1))
            .unwrap()
            .value
            .numeric();
        assert_eq!(v1, 9);
        assert_eq!(ws.writes().len(), 2);
    }

    #[test]
    fn read_only_outcome_accessors() {
        let committed = ReadOnlyOutcome::Committed(vec![VersionedObject::new(
            ObjectId(1),
            Value::new(1),
            Version(1),
        )]);
        assert!(committed.is_committed());
        assert!(!committed.is_aborted());
        assert_eq!(committed.values().unwrap().len(), 1);

        let aborted = ReadOnlyOutcome::Aborted {
            violating_object: ObjectId(7),
        };
        assert!(aborted.is_aborted());
        assert!(aborted.values().is_none());
    }

    #[test]
    fn transaction_record_constructors() {
        let up = TransactionRecord::update_committed(
            TxnId(1),
            vec![(ObjectId(1), Version(0))],
            vec![(ObjectId(1), Version(1))],
            SimTime::from_secs(1),
        );
        assert!(up.is_update());
        assert!(up.committed);
        assert!(up.cache.is_none());

        let ro = TransactionRecord::read_only(
            TxnId(2),
            CacheId(0),
            vec![(ObjectId(1), Version(1))],
            false,
            SimTime::from_secs(2),
        );
        assert!(!ro.is_update());
        assert!(!ro.committed);
        assert_eq!(ro.cache, Some(CacheId(0)));
        assert!(ro.writes.is_empty());
    }

    #[test]
    fn transaction_kind_display() {
        assert_eq!(TransactionKind::Update.to_string(), "update");
        assert_eq!(TransactionKind::ReadOnly.to_string(), "read-only");
    }
}
