//! Opaque object values stored by the database and cached at the edge.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The payload stored for an object.
///
/// The protocol is entirely agnostic to the payload; the evaluation only
/// needs a small counter-like value so that updates visibly change the
/// object. `Value` therefore wraps a `u64` "revision payload" plus an
/// optional opaque byte blob for users who want to store real data through
/// the public API.
///
/// The blob is reference-counted (`Arc<[u8]>`), so cloning a `Value` — which
/// the database and the cache do on every read — is a refcount bump, never a
/// copy of the payload bytes. The bytes themselves are immutable once
/// created; a new version of an object carries a new `Value`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Value {
    /// A small numeric payload, convenient for tests and workloads.
    numeric: u64,
    /// Optional opaque application payload, shared between all copies.
    blob: Option<Arc<[u8]>>,
}

impl Value {
    /// Creates a numeric value.
    pub fn new(numeric: u64) -> Self {
        Value {
            numeric,
            blob: None,
        }
    }

    /// Creates a value carrying an opaque byte payload.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Self {
        Value {
            numeric: 0,
            blob: Some(bytes.into().into()),
        }
    }

    /// Returns the numeric payload.
    pub fn numeric(&self) -> u64 {
        self.numeric
    }

    /// Returns the opaque byte payload, if any.
    pub fn bytes(&self) -> Option<&[u8]> {
        self.blob.as_deref()
    }

    /// Returns a value whose numeric payload is incremented by one.
    ///
    /// Update transactions in the evaluation workloads read an object and
    /// write back `bump()` of it, so every update is observable.
    #[must_use]
    pub fn bump(&self) -> Value {
        Value {
            numeric: self.numeric.wrapping_add(1),
            blob: self.blob.clone(),
        }
    }

    /// Approximate size in bytes of the payload (used by cache statistics).
    pub fn size_bytes(&self) -> usize {
        8 + self.blob.as_ref().map_or(0, |b| b.len())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.blob {
            Some(b) => write!(f, "Value({}, {} bytes)", self.numeric, b.len()),
            None => write!(f, "Value({})", self.numeric),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::new(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::from_bytes(s.as_bytes().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_value() {
        let v = Value::new(7);
        assert_eq!(v.numeric(), 7);
        assert!(v.bytes().is_none());
        assert_eq!(v.size_bytes(), 8);
    }

    #[test]
    fn bump_increments() {
        let v = Value::new(7);
        assert_eq!(v.bump().numeric(), 8);
        // bump preserves the blob
        let v = Value::from_bytes(vec![1, 2, 3]);
        assert_eq!(v.bump().bytes(), Some(&[1u8, 2, 3][..]));
    }

    #[test]
    fn bump_wraps_at_max() {
        let v = Value::new(u64::MAX);
        assert_eq!(v.bump().numeric(), 0);
    }

    #[test]
    fn byte_value() {
        let v = Value::from_bytes(b"hello".to_vec());
        assert_eq!(v.bytes(), Some(&b"hello"[..]));
        assert_eq!(v.size_bytes(), 8 + 5);
        let v2: Value = "hello".into();
        assert_eq!(v2.bytes(), Some(&b"hello"[..]));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Value::default().to_string().is_empty());
        assert!(Value::from_bytes(vec![0u8; 4]).to_string().contains("4 bytes"));
    }

    #[test]
    fn clones_share_the_blob_allocation() {
        let v = Value::from_bytes(vec![7u8; 1024]);
        let copy = v.clone();
        let (a, b) = (v.bytes().unwrap(), copy.bytes().unwrap());
        assert!(std::ptr::eq(a, b), "clone must not copy the payload bytes");
        // bump() shares it too: only the numeric revision changes.
        let bumped = v.bump();
        assert!(std::ptr::eq(a, bumped.bytes().unwrap()));
    }
}
