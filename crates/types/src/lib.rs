//! Common vocabulary types for the T-Cache reproduction.
//!
//! This crate defines the identifiers, versions, dependency lists, read/write
//! sets and configuration enums shared by the backend database, the edge
//! cache, the consistency monitor and the experiment harness.
//!
//! The central type is [`DependencyList`]: a bounded, LRU-pruned list of
//! `(ObjectId, Version)` pairs stored alongside every database object and
//! every cache entry, exactly as described in §III-A of the paper
//! *Cache Serializability: Reducing Inconsistency in Edge Transactions*
//! (Eyal, Birman, van Renesse, ICDCS 2015).
//!
//! # Example
//!
//! ```
//! use tcache_types::{DependencyList, ObjectId, Version};
//!
//! let mut deps = DependencyList::bounded(3);
//! deps.record(ObjectId(1), Version(10));
//! deps.record(ObjectId(2), Version(11));
//! deps.record(ObjectId(3), Version(12));
//! deps.record(ObjectId(4), Version(13)); // evicts the LRU entry (object 1)
//! assert_eq!(deps.len(), 3);
//! assert!(deps.version_of(ObjectId(1)).is_none());
//! assert_eq!(deps.version_of(ObjectId(4)), Some(Version(13)));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod config;
pub mod dependency;
pub mod epoch;
pub mod entry;
pub mod error;
pub mod ids;
pub mod protocol;
pub mod seeding;
pub mod time;
pub mod transaction;
pub mod value;

pub use config::{CachePolicyConfig, DependencyBound, RecoveryPolicy, Strategy, TtlConfig};
pub use dependency::{DependencyEntry, DependencyList};
pub use entry::{ObjectEntry, VersionedObject};
pub use epoch::{EpochDomain, EpochGuard, EpochStats};
pub use error::{ConflictReason, TCacheError, TCacheResult};
pub use ids::{CacheId, ClientId, ObjectId, TxnId, Version};
pub use protocol::{format_trace, ProtocolAction, ProtocolTrace};
pub use seeding::{
    cache_channel_seed, cache_delay_seed, derive_stream_seed, fault_seed, scenario_seed, zipf_seed,
};
pub use time::{SimDuration, SimTime};
pub use transaction::{
    AccessSet, ReadOnlyOutcome, ReadRecord, ReadSet, TransactionKind, TransactionRecord,
    WriteRecord, WriteSet,
};
pub use value::Value;
