//! Simulated time.
//!
//! The experiment harness is a discrete-event simulation: all components are
//! driven by a virtual clock measured in microseconds. Using a dedicated
//! newtype (rather than `std::time::Instant`) keeps runs deterministic and
//! lets tests fast-forward time freely.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Builds a time from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds a time from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Returns the time as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the time in whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Builds a duration from fractional seconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "duration must be non-negative");
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Builds a duration from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration in whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Multiplies the duration by a non-negative factor.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(5).as_micros(), 5);
        assert!((SimTime::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-9);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1_000);
        assert_eq!(SimDuration::from_micros(1).as_micros(), 1);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        let mut t2 = SimTime::ZERO;
        t2 += SimDuration::from_secs(3);
        assert_eq!(t2, SimTime::from_secs(3));
        assert_eq!(t2 - SimTime::from_secs(1), SimDuration::from_secs(2));
        // saturating subtraction
        assert_eq!(SimTime::from_secs(1) - SimTime::from_secs(5), SimDuration::ZERO);
        let d = SimDuration::from_secs(1) + SimDuration::from_secs(2);
        assert_eq!(d, SimDuration::from_secs(3));
        let mut d2 = SimDuration::ZERO;
        d2 += SimDuration::from_millis(5);
        assert_eq!(d2.as_micros(), 5_000);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(2).mul_f64(0.25);
        assert_eq!(d.as_micros(), 500_000);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
        assert!(SimDuration::from_micros(10).to_string().contains("0.000010"));
    }
}
