//! Configuration types shared by the cache, the database and the harness.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the cache reacts when a read would violate consistency (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Strategy {
    /// Abort the current transaction and nothing else. Limits collateral
    /// damage to the running transaction.
    #[default]
    Abort,
    /// Abort the current transaction **and** evict the violating (too old)
    /// object from the cache, guessing that future transactions would abort
    /// because of it as well.
    Evict,
    /// If the violating object is the one being read right now (Eq. 2),
    /// treat the access as a miss and read through to the database; if the
    /// violating object was already returned earlier in the transaction
    /// (Eq. 1), evict it and abort.
    Retry,
}

impl Strategy {
    /// All strategies, in the order the paper presents them.
    pub const ALL: [Strategy; 3] = [Strategy::Abort, Strategy::Evict, Strategy::Retry];
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Abort => write!(f, "ABORT"),
            Strategy::Evict => write!(f, "EVICT"),
            Strategy::Retry => write!(f, "RETRY"),
        }
    }
}

/// Maximum dependency-list length used by the database and the cache.
///
/// The paper bounds lists to small constants (up to 5 in the evaluation);
/// [`DependencyBound::Unbounded`] models Theorem 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DependencyBound {
    /// Lists are pruned with LRU to at most this many entries.
    Bounded(usize),
    /// Lists grow without bound (Theorem 1's configuration).
    Unbounded,
}

impl DependencyBound {
    /// The number of entries retained (`usize::MAX` when unbounded).
    pub fn limit(self) -> usize {
        match self {
            DependencyBound::Bounded(k) => k,
            DependencyBound::Unbounded => usize::MAX,
        }
    }

    /// Returns `true` for the unbounded configuration.
    pub fn is_unbounded(self) -> bool {
        matches!(self, DependencyBound::Unbounded)
    }
}

impl Default for DependencyBound {
    fn default() -> Self {
        DependencyBound::Bounded(3)
    }
}

impl From<usize> for DependencyBound {
    fn from(k: usize) -> Self {
        DependencyBound::Bounded(k)
    }
}

impl fmt::Display for DependencyBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DependencyBound::Bounded(k) => write!(f, "k={k}"),
            DependencyBound::Unbounded => write!(f, "k=∞"),
        }
    }
}

/// Time-to-live configuration for the TTL baseline cache (§V-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TtlConfig {
    /// Entries never expire (the default for T-Cache itself).
    #[default]
    Infinite,
    /// Entries are discarded after this long in the cache.
    Limited(SimDuration),
}

impl TtlConfig {
    /// Returns the configured lifetime, if finite.
    pub fn lifetime(self) -> Option<SimDuration> {
        match self {
            TtlConfig::Infinite => None,
            TtlConfig::Limited(d) => Some(d),
        }
    }
}

impl fmt::Display for TtlConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TtlConfig::Infinite => write!(f, "ttl=∞"),
            TtlConfig::Limited(d) => write!(f, "ttl={d}"),
        }
    }
}

/// How an edge cache recovers when it detects that it has missed
/// invalidations (a sequence gap after a drop, crash or partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// No recovery: gaps are counted but the cache keeps serving whatever
    /// it holds. Models the paper's lossy baseline and the "without
    /// recovery" axis of the fault-tolerance sweep.
    #[default]
    None,
    /// Gap-triggered resync: on a detected sequence gap the cache replays
    /// the backend's invalidation log (or falls back to a full snapshot
    /// resync when the log has been truncated). While partitioned for
    /// longer than `staleness_budget`, the cache degrades to pass-through
    /// reads instead of serving an unboundedly stale working set.
    GapResync {
        /// Longest partition a cache will ride out while still serving
        /// cached reads. Beyond this the cache turns Degraded and reads
        /// pass through to the database until it reconnects.
        staleness_budget: SimDuration,
    },
}

impl RecoveryPolicy {
    /// Returns the staleness budget, if the policy bounds staleness.
    pub fn staleness_budget(self) -> Option<SimDuration> {
        match self {
            RecoveryPolicy::None => None,
            RecoveryPolicy::GapResync { staleness_budget } => Some(staleness_budget),
        }
    }

    /// Returns `true` when gap detection triggers a resync.
    pub fn resyncs(self) -> bool {
        matches!(self, RecoveryPolicy::GapResync { .. })
    }
}

impl fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryPolicy::None => write!(f, "no-recovery"),
            RecoveryPolicy::GapResync { staleness_budget } => {
                write!(f, "gap-resync(budget={staleness_budget})")
            }
        }
    }
}

/// Full cache-side policy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachePolicyConfig {
    /// Dependency-list bound used when storing entries and checking reads.
    pub dependency_bound: DependencyBound,
    /// Reaction to detected inconsistencies.
    pub strategy: Strategy,
    /// Entry time-to-live (used by the TTL baseline; `Infinite` for T-Cache).
    pub ttl: TtlConfig,
    /// Whether transactional consistency checks are performed at all.
    /// `false` models the plain consistency-unaware cache baseline.
    pub transactional: bool,
}

impl Default for CachePolicyConfig {
    fn default() -> Self {
        CachePolicyConfig {
            dependency_bound: DependencyBound::default(),
            strategy: Strategy::default(),
            ttl: TtlConfig::Infinite,
            transactional: true,
        }
    }
}

impl CachePolicyConfig {
    /// T-Cache with the given dependency bound and strategy.
    pub fn tcache(bound: usize, strategy: Strategy) -> Self {
        CachePolicyConfig {
            dependency_bound: DependencyBound::Bounded(bound),
            strategy,
            ttl: TtlConfig::Infinite,
            transactional: true,
        }
    }

    /// The consistency-unaware baseline cache.
    pub fn plain() -> Self {
        CachePolicyConfig {
            dependency_bound: DependencyBound::Bounded(0),
            strategy: Strategy::Abort,
            ttl: TtlConfig::Infinite,
            transactional: false,
        }
    }

    /// The TTL-limited baseline cache.
    pub fn ttl_baseline(ttl: SimDuration) -> Self {
        CachePolicyConfig {
            dependency_bound: DependencyBound::Bounded(0),
            strategy: Strategy::Abort,
            ttl: TtlConfig::Limited(ttl),
            transactional: false,
        }
    }

    /// The unbounded configuration of Theorem 1.
    pub fn unbounded(strategy: Strategy) -> Self {
        CachePolicyConfig {
            dependency_bound: DependencyBound::Unbounded,
            strategy,
            ttl: TtlConfig::Infinite,
            transactional: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_display_and_all() {
        assert_eq!(Strategy::Abort.to_string(), "ABORT");
        assert_eq!(Strategy::Evict.to_string(), "EVICT");
        assert_eq!(Strategy::Retry.to_string(), "RETRY");
        assert_eq!(Strategy::ALL.len(), 3);
        assert_eq!(Strategy::default(), Strategy::Abort);
    }

    #[test]
    fn dependency_bound_limits() {
        assert_eq!(DependencyBound::Bounded(5).limit(), 5);
        assert_eq!(DependencyBound::Unbounded.limit(), usize::MAX);
        assert!(DependencyBound::Unbounded.is_unbounded());
        assert!(!DependencyBound::Bounded(1).is_unbounded());
        assert_eq!(DependencyBound::from(4), DependencyBound::Bounded(4));
        assert_eq!(DependencyBound::default(), DependencyBound::Bounded(3));
        assert_eq!(DependencyBound::Bounded(2).to_string(), "k=2");
        assert_eq!(DependencyBound::Unbounded.to_string(), "k=∞");
    }

    #[test]
    fn ttl_config() {
        assert!(TtlConfig::Infinite.lifetime().is_none());
        let d = SimDuration::from_secs(30);
        assert_eq!(TtlConfig::Limited(d).lifetime(), Some(d));
        assert_eq!(TtlConfig::default(), TtlConfig::Infinite);
        assert!(TtlConfig::Limited(d).to_string().contains("30"));
    }

    #[test]
    fn recovery_policy_accessors() {
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::None);
        assert!(RecoveryPolicy::None.staleness_budget().is_none());
        assert!(!RecoveryPolicy::None.resyncs());
        let budget = SimDuration::from_millis(100);
        let p = RecoveryPolicy::GapResync {
            staleness_budget: budget,
        };
        assert_eq!(p.staleness_budget(), Some(budget));
        assert!(p.resyncs());
        assert!(p.to_string().contains("gap-resync"));
        assert_eq!(RecoveryPolicy::None.to_string(), "no-recovery");
    }

    #[test]
    fn policy_presets() {
        let t = CachePolicyConfig::tcache(5, Strategy::Retry);
        assert!(t.transactional);
        assert_eq!(t.dependency_bound.limit(), 5);
        assert_eq!(t.strategy, Strategy::Retry);

        let p = CachePolicyConfig::plain();
        assert!(!p.transactional);
        assert_eq!(p.dependency_bound.limit(), 0);

        let ttl = CachePolicyConfig::ttl_baseline(SimDuration::from_secs(60));
        assert!(!ttl.transactional);
        assert!(ttl.ttl.lifetime().is_some());

        let u = CachePolicyConfig::unbounded(Strategy::Abort);
        assert!(u.dependency_bound.is_unbounded());

        let d = CachePolicyConfig::default();
        assert!(d.transactional);
    }
}
