//! Bounded, LRU-pruned dependency lists (§III-A of the paper).
//!
//! The database stores, for each object `o`, a list of `k` dependencies
//! `(d₁, v₁), …, (d_k, v_k)`: identifiers and versions of other objects the
//! current version of `o` depends on. A read-only transaction that sees the
//! current version of `o` must not see object `dᵢ` with a version smaller
//! than `vᵢ`.
//!
//! Dependency lists are bounded; when they grow past the bound they are
//! pruned using an LRU policy so that the list tends to contain the objects
//! most recently accessed together with `o`. An entry can also be discarded
//! if the same object appears in another entry with a larger version.

use crate::ids::{ObjectId, Version};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single dependency: an object identifier and the minimum version of that
/// object which may be observed together with the owner of the list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DependencyEntry {
    /// The object this dependency refers to.
    pub object: ObjectId,
    /// The minimum version of [`Self::object`] that a consistent reader may
    /// observe.
    pub version: Version,
}

impl DependencyEntry {
    /// Creates a dependency entry.
    pub fn new(object: ObjectId, version: Version) -> Self {
        DependencyEntry { object, version }
    }
}

impl fmt::Display for DependencyEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.object, self.version)
    }
}

/// A bounded, LRU-ordered list of [`DependencyEntry`] values.
///
/// Entries are kept in most-recently-recorded-first order. Recording a
/// dependency for an object already present refreshes its recency and keeps
/// the larger of the two versions. When the list exceeds its bound the least
/// recently recorded entries are dropped.
///
/// A bound of `usize::MAX` (constructed with [`DependencyList::unbounded`])
/// models the unbounded lists of Theorem 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DependencyList {
    /// Most recently recorded first.
    entries: Vec<DependencyEntry>,
    /// Maximum number of entries retained.
    bound: usize,
}

impl Default for DependencyList {
    fn default() -> Self {
        DependencyList::unbounded()
    }
}

impl DependencyList {
    /// Creates an empty dependency list that retains at most `bound` entries.
    ///
    /// A bound of zero is valid and models a consistency-unaware system: the
    /// list never stores anything, so no inconsistency is ever detected.
    pub fn bounded(bound: usize) -> Self {
        DependencyList {
            entries: Vec::with_capacity(bound.min(16)),
            bound,
        }
    }

    /// Creates an empty dependency list with no practical bound
    /// (Theorem 1's "unbounded resources" configuration).
    pub fn unbounded() -> Self {
        DependencyList {
            entries: Vec::new(),
            bound: usize::MAX,
        }
    }

    /// Builds a list directly from entries that are **already in
    /// most-recent-first order with distinct objects**, keeping at most
    /// `bound` of them (the rest — the least recent — are dropped).
    ///
    /// This is the allocation-minimal path for deriving one list from
    /// another (e.g. the per-object lists cut from an aggregated commit
    /// list): a single collect, no per-entry re-recording.
    pub fn from_most_recent(
        entries: impl IntoIterator<Item = DependencyEntry>,
        bound: usize,
    ) -> DependencyList {
        let entries: Vec<DependencyEntry> = entries.into_iter().take(bound).collect();
        debug_assert!(
            {
                let mut seen = std::collections::HashSet::new();
                entries.iter().all(|e| seen.insert(e.object))
            },
            "from_most_recent requires distinct objects"
        );
        DependencyList { entries, bound }
    }

    /// Returns the configured bound.
    #[inline]
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Returns the number of entries currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the list holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the version recorded for `object`, if present.
    #[inline]
    pub fn version_of(&self, object: ObjectId) -> Option<Version> {
        self.entries
            .iter()
            .find(|e| e.object == object)
            .map(|e| e.version)
    }

    /// Returns `true` if `object` appears in the list.
    #[inline]
    pub fn contains(&self, object: ObjectId) -> bool {
        self.version_of(object).is_some()
    }

    /// Iterates over the entries, most recently recorded first.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = &DependencyEntry> {
        self.entries.iter()
    }

    /// Records a dependency on `object` at `version`.
    ///
    /// If `object` is already present, the entry is refreshed (moved to the
    /// most-recent position) and its version is raised to the maximum of the
    /// existing and the new version — an entry can be discarded if the same
    /// object appears with a larger version, so only the larger one is kept.
    /// The list is then pruned to its bound from the least-recent end.
    pub fn record(&mut self, object: ObjectId, version: Version) {
        let merged_version = match self.entries.iter().position(|e| e.object == object) {
            Some(idx) => {
                let existing = self.entries.remove(idx);
                existing.version.max(version)
            }
            None => version,
        };
        self.entries
            .insert(0, DependencyEntry::new(object, merged_version));
        self.prune();
    }

    /// Records a full [`DependencyEntry`].
    pub fn record_entry(&mut self, entry: DependencyEntry) {
        self.record(entry.object, entry.version);
    }

    /// Merges another dependency list into this one.
    ///
    /// The other list's entries are recorded from least-recent to most-recent
    /// so that the relative recency of `other` is preserved and its
    /// most-recent entries end up most recent here as well.
    pub fn merge(&mut self, other: &DependencyList) {
        for entry in other.entries.iter().rev() {
            self.record(entry.object, entry.version);
        }
    }

    /// Removes any entry referring to `object`, returning its version.
    pub fn remove(&mut self, object: ObjectId) -> Option<Version> {
        match self.entries.iter().position(|e| e.object == object) {
            Some(idx) => Some(self.entries.remove(idx).version),
            None => None,
        }
    }

    /// Changes the bound of the list, pruning if the new bound is smaller.
    pub fn set_bound(&mut self, bound: usize) {
        self.bound = bound;
        self.prune();
    }

    /// Returns a copy of this list re-bounded to `bound` (pruning the
    /// least-recent entries if necessary).
    #[must_use]
    pub fn rebounded(&self, bound: usize) -> DependencyList {
        let mut copy = self.clone();
        copy.set_bound(bound);
        copy
    }

    /// Drops entries beyond the bound (least recently recorded first).
    fn prune(&mut self) {
        if self.entries.len() > self.bound {
            self.entries.truncate(self.bound);
        }
    }

    /// Builds the *full dependency list* for a committing transaction
    /// (§III-A):
    ///
    /// ```text
    /// full-dep-list ← ⋃ {(key, ver)} ∪ depList
    ///                 over readSet ∪ writeSet
    /// ```
    ///
    /// `accessed` yields `(key, version-read, dependency-list)` tuples for
    /// every object in the read and write sets, **ordered from least to most
    /// recently accessed**; the result is pruned with LRU to `bound`.
    pub fn aggregate<'a, I>(accessed: I, bound: usize) -> DependencyList
    where
        I: IntoIterator<Item = (ObjectId, Version, &'a DependencyList)>,
    {
        let mut full = DependencyList::bounded(usize::MAX);
        for (key, version, deps) in accessed {
            full.merge(deps);
            full.record(key, version);
        }
        full.set_bound(bound);
        full
    }

    /// Returns the entries as a plain vector (most recent first); useful for
    /// assertions in tests and for serialization into invalidation messages.
    pub fn to_vec(&self) -> Vec<DependencyEntry> {
        self.entries.clone()
    }
}

impl fmt::Display for DependencyList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<DependencyEntry> for DependencyList {
    fn from_iter<T: IntoIterator<Item = DependencyEntry>>(iter: T) -> Self {
        let mut list = DependencyList::unbounded();
        for e in iter {
            list.record_entry(e);
        }
        list
    }
}

impl Extend<DependencyEntry> for DependencyList {
    fn extend<T: IntoIterator<Item = DependencyEntry>>(&mut self, iter: T) {
        for e in iter {
            self.record_entry(e);
        }
    }
}

impl<'a> IntoIterator for &'a DependencyList {
    type Item = &'a DependencyEntry;
    type IntoIter = std::slice::Iter<'a, DependencyEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

// Manual serde impls (the workspace's serde shim only generates marker
// derives; these are the types that genuinely cross a serialization
// boundary in tests and tooling).

impl serde::Serialize for DependencyEntry {
    fn to_json(&self) -> serde::json::Json {
        serde::json::Json::Map(vec![
            ("object".into(), self.object.to_json()),
            ("version".into(), self.version.to_json()),
        ])
    }
}

impl serde::Deserialize for DependencyEntry {
    fn from_json(value: &serde::json::Json) -> Result<Self, serde::json::JsonError> {
        let object = value
            .get("object")
            .ok_or_else(|| serde::json::JsonError::shape("missing 'object'"))?;
        let version = value
            .get("version")
            .ok_or_else(|| serde::json::JsonError::shape("missing 'version'"))?;
        Ok(DependencyEntry {
            object: ObjectId::from_json(object)?,
            version: Version::from_json(version)?,
        })
    }
}

impl serde::Serialize for DependencyList {
    fn to_json(&self) -> serde::json::Json {
        serde::json::Json::Map(vec![
            ("entries".into(), self.entries.to_json()),
            ("bound".into(), serde::json::Json::U64(self.bound as u64)),
        ])
    }
}

impl serde::Deserialize for DependencyList {
    fn from_json(value: &serde::json::Json) -> Result<Self, serde::json::JsonError> {
        let entries = value
            .get("entries")
            .ok_or_else(|| serde::json::JsonError::shape("missing 'entries'"))?;
        let bound = value
            .get("bound")
            .ok_or_else(|| serde::json::JsonError::shape("missing 'bound'"))?;
        Ok(DependencyList {
            entries: Vec::<DependencyEntry>::from_json(entries)?,
            bound: usize::from_json(bound)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(i: u64) -> ObjectId {
        ObjectId(i)
    }
    fn v(i: u64) -> Version {
        Version(i)
    }

    #[test]
    fn empty_list() {
        let l = DependencyList::bounded(3);
        assert!(l.is_empty());
        assert_eq!(l.len(), 0);
        assert_eq!(l.bound(), 3);
        assert!(l.version_of(o(1)).is_none());
    }

    #[test]
    fn record_and_lookup() {
        let mut l = DependencyList::bounded(3);
        l.record(o(1), v(10));
        l.record(o(2), v(20));
        assert_eq!(l.len(), 2);
        assert_eq!(l.version_of(o(1)), Some(v(10)));
        assert_eq!(l.version_of(o(2)), Some(v(20)));
        assert!(l.contains(o(1)));
        assert!(!l.contains(o(3)));
    }

    #[test]
    fn lru_pruning_drops_oldest() {
        let mut l = DependencyList::bounded(2);
        l.record(o(1), v(1));
        l.record(o(2), v(2));
        l.record(o(3), v(3));
        assert_eq!(l.len(), 2);
        assert!(!l.contains(o(1)), "LRU entry must be evicted");
        assert!(l.contains(o(2)));
        assert!(l.contains(o(3)));
    }

    #[test]
    fn recording_existing_object_refreshes_recency() {
        let mut l = DependencyList::bounded(2);
        l.record(o(1), v(1));
        l.record(o(2), v(2));
        // refresh object 1 so object 2 becomes LRU
        l.record(o(1), v(1));
        l.record(o(3), v(3));
        assert!(l.contains(o(1)));
        assert!(!l.contains(o(2)));
        assert!(l.contains(o(3)));
    }

    #[test]
    fn recording_keeps_larger_version() {
        let mut l = DependencyList::bounded(3);
        l.record(o(1), v(5));
        l.record(o(1), v(3));
        assert_eq!(l.version_of(o(1)), Some(v(5)));
        l.record(o(1), v(9));
        assert_eq!(l.version_of(o(1)), Some(v(9)));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn zero_bound_stores_nothing() {
        let mut l = DependencyList::bounded(0);
        l.record(o(1), v(1));
        l.record(o(2), v(2));
        assert!(l.is_empty());
    }

    #[test]
    fn unbounded_never_prunes() {
        let mut l = DependencyList::unbounded();
        for i in 0..10_000u64 {
            l.record(o(i), v(i));
        }
        assert_eq!(l.len(), 10_000);
    }

    #[test]
    fn merge_preserves_other_recency_order() {
        let mut a = DependencyList::bounded(2);
        a.record(o(1), v(1));

        let mut b = DependencyList::bounded(3);
        b.record(o(2), v(2));
        b.record(o(3), v(3)); // o3 most recent in b

        a.merge(&b);
        // a has bound 2: the most recent entries are o3 (most recent of b,
        // recorded last) and o2; o1 was pushed out.
        assert_eq!(a.len(), 2);
        assert!(a.contains(o(3)));
        assert!(a.contains(o(2)));
        assert!(!a.contains(o(1)));
    }

    #[test]
    fn merge_takes_max_version_per_object() {
        let mut a = DependencyList::bounded(4);
        a.record(o(1), v(10));
        let mut b = DependencyList::bounded(4);
        b.record(o(1), v(4));
        a.merge(&b);
        assert_eq!(a.version_of(o(1)), Some(v(10)));
        let mut c = DependencyList::bounded(4);
        c.record(o(1), v(15));
        a.merge(&c);
        assert_eq!(a.version_of(o(1)), Some(v(15)));
    }

    #[test]
    fn aggregate_matches_paper_formula() {
        // Transaction reads o1 (v1, deps [o5:v5]) and writes o2 (v2, deps [o6:v6]).
        let mut d1 = DependencyList::bounded(5);
        d1.record(o(5), v(5));
        let mut d2 = DependencyList::bounded(5);
        d2.record(o(6), v(6));

        let full = DependencyList::aggregate(
            vec![(o(1), v(1), &d1), (o(2), v(2), &d2)],
            5,
        );
        assert!(full.contains(o(1)));
        assert!(full.contains(o(2)));
        assert!(full.contains(o(5)));
        assert!(full.contains(o(6)));
        assert_eq!(full.version_of(o(1)), Some(v(1)));
        assert_eq!(full.version_of(o(6)), Some(v(6)));
    }

    #[test]
    fn aggregate_prunes_to_bound_keeping_most_recent() {
        let empty = DependencyList::bounded(0);
        // Access o0..o9 in order; bound 3 keeps the last accessed (o7,o8,o9).
        let accessed: Vec<_> = (0..10).map(|i| (o(i), v(i + 1), &empty)).collect();
        let full = DependencyList::aggregate(accessed, 3);
        assert_eq!(full.len(), 3);
        assert!(full.contains(o(9)));
        assert!(full.contains(o(8)));
        assert!(full.contains(o(7)));
        assert!(!full.contains(o(0)));
    }

    #[test]
    fn remove_and_set_bound() {
        let mut l = DependencyList::bounded(5);
        l.record(o(1), v(1));
        l.record(o(2), v(2));
        l.record(o(3), v(3));
        assert_eq!(l.remove(o(2)), Some(v(2)));
        assert_eq!(l.remove(o(2)), None);
        assert_eq!(l.len(), 2);
        l.set_bound(1);
        assert_eq!(l.len(), 1);
        assert!(l.contains(o(3)), "most recent entry survives re-bounding");
    }

    #[test]
    fn rebounded_copy_does_not_mutate_original() {
        let mut l = DependencyList::bounded(5);
        for i in 0..5 {
            l.record(o(i), v(i));
        }
        let small = l.rebounded(2);
        assert_eq!(small.len(), 2);
        assert_eq!(l.len(), 5);
    }

    #[test]
    fn from_iterator_and_extend() {
        let entries = vec![
            DependencyEntry::new(o(1), v(1)),
            DependencyEntry::new(o(2), v(2)),
        ];
        let mut l: DependencyList = entries.clone().into_iter().collect();
        assert_eq!(l.len(), 2);
        l.extend(vec![DependencyEntry::new(o(3), v(3))]);
        assert_eq!(l.len(), 3);
        let collected: Vec<_> = (&l).into_iter().cloned().collect();
        assert_eq!(collected.len(), 3);
    }

    #[test]
    fn display_formats() {
        let mut l = DependencyList::bounded(2);
        assert_eq!(l.to_string(), "[]");
        l.record(o(1), v(2));
        assert_eq!(l.to_string(), "[(o1, v2)]");
        assert_eq!(DependencyEntry::new(o(1), v(2)).to_string(), "(o1, v2)");
    }

    #[test]
    fn serde_round_trip() {
        let mut l = DependencyList::bounded(3);
        l.record(o(1), v(1));
        l.record(o(2), v(2));
        let s = serde_json::to_string(&l).unwrap();
        let back: DependencyList = serde_json::from_str(&s).unwrap();
        assert_eq!(l, back);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_entry() -> impl Strategy<Value = DependencyEntry> {
        (0u64..50, 0u64..1000)
            .prop_map(|(o, v)| DependencyEntry::new(ObjectId(o), Version(v)))
    }

    proptest! {
        /// The list never exceeds its bound, regardless of the operation mix.
        #[test]
        fn never_exceeds_bound(
            bound in 0usize..8,
            ops in prop::collection::vec(arb_entry(), 0..200),
        ) {
            let mut l = DependencyList::bounded(bound);
            for e in ops {
                l.record_entry(e);
                prop_assert!(l.len() <= bound);
            }
        }

        /// Each object appears at most once.
        #[test]
        fn no_duplicate_objects(
            bound in 1usize..8,
            ops in prop::collection::vec(arb_entry(), 0..200),
        ) {
            let mut l = DependencyList::bounded(bound);
            for e in ops {
                l.record_entry(e);
            }
            let mut seen = std::collections::HashSet::new();
            for e in l.iter() {
                prop_assert!(seen.insert(e.object), "duplicate object {:?}", e.object);
            }
        }

        /// The stored version for an object is the maximum version ever
        /// recorded for it since it last (re-)entered the list — in
        /// particular it is never smaller than the version just recorded.
        #[test]
        fn version_monotone_wrt_last_record(
            ops in prop::collection::vec(arb_entry(), 1..200),
        ) {
            let mut l = DependencyList::bounded(4);
            for e in &ops {
                l.record_entry(*e);
                prop_assert!(l.version_of(e.object).unwrap() >= e.version);
            }
        }

        /// With an unbounded list, merging is lossless: every entry of both
        /// inputs is present in the result with a version at least as large.
        #[test]
        fn unbounded_merge_is_lossless(
            left in prop::collection::vec(arb_entry(), 0..50),
            right in prop::collection::vec(arb_entry(), 0..50),
        ) {
            let mut a = DependencyList::unbounded();
            a.extend(left.iter().cloned());
            let mut b = DependencyList::unbounded();
            b.extend(right.iter().cloned());
            let mut merged = a.clone();
            merged.merge(&b);
            for e in left.iter().chain(right.iter()) {
                prop_assert!(merged.version_of(e.object).unwrap() >= e.version);
            }
        }

        /// Aggregation always contains the most recently accessed key when
        /// the bound is at least one.
        #[test]
        fn aggregate_contains_last_key(
            bound in 1usize..6,
            keys in prop::collection::vec(0u64..100, 1..20),
        ) {
            let empty = DependencyList::bounded(0);
            let accessed: Vec<_> = keys
                .iter()
                .map(|&k| (ObjectId(k), Version(k + 1), &empty))
                .collect();
            let last = *keys.last().unwrap();
            let full = DependencyList::aggregate(accessed, bound);
            prop_assert!(full.contains(ObjectId(last)));
            prop_assert!(full.len() <= bound);
        }
    }
}
