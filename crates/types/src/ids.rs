//! Identifier newtypes used across the system.
//!
//! Every identifier is a transparent wrapper around an unsigned integer so it
//! is `Copy`, hashable and cheap, while keeping object ids, transaction ids,
//! versions and client ids statically distinct (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a database object (a key in the key-value store).
///
/// Objects in the evaluation workloads are numbered `0..n`, matching the
/// paper's synthetic workloads ("2000 objects numbered 0 through 1999").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// Returns the raw numeric id.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl From<u64> for ObjectId {
    fn from(v: u64) -> Self {
        ObjectId(v)
    }
}

impl From<usize> for ObjectId {
    fn from(v: usize) -> Self {
        ObjectId(v as u64)
    }
}

/// A totally ordered object version.
///
/// The database tags each object with the version of the transaction that
/// most recently updated it; the version of a transaction is chosen larger
/// than the versions of all objects it accessed (§III-A).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Version(pub u64);

impl Version {
    /// The version of an object that has never been written by any
    /// transaction (its initial load).
    pub const INITIAL: Version = Version(0);

    /// Returns the next version (used by the database version clock).
    #[must_use]
    #[inline]
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }

    /// Returns the maximum of two versions.
    #[must_use]
    #[inline]
    pub fn max(self, other: Version) -> Version {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns `true` if this version is strictly newer than `other`.
    #[inline]
    pub fn is_newer_than(self, other: Version) -> bool {
        self.0 > other.0
    }

    /// Returns the raw numeric version.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u64> for Version {
    fn from(v: u64) -> Self {
        Version(v)
    }
}

/// Identifier of a transaction (update or read-only).
///
/// Read-only transactions pass their `TxnId` with every cache read so the
/// cache can associate reads belonging to the same transaction (§III-B).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TxnId(pub u64);

impl TxnId {
    /// Returns the raw numeric id.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for TxnId {
    fn from(v: u64) -> Self {
        TxnId(v)
    }
}

/// Identifier of a cache server.
///
/// The evaluation simulates a single "column" (one cache, one database), but
/// the types support multiple caches since cache-serializability is defined
/// per cache server.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CacheId(pub u32);

impl fmt::Display for CacheId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cache{}", self.0)
    }
}

impl From<u32> for CacheId {
    fn from(v: u32) -> Self {
        CacheId(v)
    }
}

/// Identifier of a client (an update client talking to the database or a
/// read-only client talking to a cache).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client{}", self.0)
    }
}

impl From<u32> for ClientId {
    fn from(v: u32) -> Self {
        ClientId(v)
    }
}

// Manual serde impls over the workspace's serde shim: the id newtypes
// serialize as their raw integer, matching how real serde treats
// transparent newtype structs.
macro_rules! impl_id_serde {
    ($($t:ty),*) => {$(
        impl serde::Serialize for $t {
            fn to_json(&self) -> serde::json::Json {
                serde::json::Json::U64(self.0 as u64)
            }
        }
        impl serde::Deserialize for $t {
            fn from_json(value: &serde::json::Json) -> Result<Self, serde::json::JsonError> {
                match value {
                    serde::json::Json::U64(n) => Ok(Self(
                        (*n).try_into()
                            .map_err(|_| serde::json::JsonError::shape("id out of range"))?,
                    )),
                    _ => Err(serde::json::JsonError::shape("expected an integer id")),
                }
            }
        }
    )*};
}

impl_id_serde!(ObjectId, Version, TxnId, CacheId, ClientId);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_ordering_and_next() {
        let v1 = Version(1);
        let v2 = v1.next();
        assert_eq!(v2, Version(2));
        assert!(v2 > v1);
        assert!(v2.is_newer_than(v1));
        assert!(!v1.is_newer_than(v2));
        assert!(!v1.is_newer_than(v1));
        assert_eq!(v1.max(v2), v2);
        assert_eq!(v2.max(v1), v2);
    }

    #[test]
    fn initial_version_is_oldest() {
        assert!(Version(1).is_newer_than(Version::INITIAL));
        assert_eq!(Version::INITIAL.next(), Version(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(ObjectId(7).to_string(), "o7");
        assert_eq!(Version(3).to_string(), "v3");
        assert_eq!(TxnId(9).to_string(), "t9");
        assert_eq!(CacheId(1).to_string(), "cache1");
        assert_eq!(ClientId(2).to_string(), "client2");
    }

    #[test]
    fn conversions() {
        assert_eq!(ObjectId::from(5u64), ObjectId(5));
        assert_eq!(ObjectId::from(5usize), ObjectId(5));
        assert_eq!(Version::from(5u64), Version(5));
        assert_eq!(TxnId::from(5u64), TxnId(5));
        assert_eq!(CacheId::from(5u32), CacheId(5));
        assert_eq!(ClientId::from(5u32), ClientId(5));
        assert_eq!(ObjectId(5).as_u64(), 5);
        assert_eq!(Version(5).as_u64(), 5);
        assert_eq!(TxnId(5).as_u64(), 5);
    }

    #[test]
    fn ids_are_hashable_and_usable_as_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(ObjectId(1), Version(1));
        m.insert(ObjectId(2), Version(2));
        assert_eq!(m[&ObjectId(1)], Version(1));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let o = ObjectId(42);
        let s = serde_json::to_string(&o).unwrap();
        let back: ObjectId = serde_json::from_str(&s).unwrap();
        assert_eq!(o, back);
    }
}
