//! Hand-rolled epoch-based memory reclamation (EBR) for the lock-free
//! cache read path.
//!
//! The workspace's no-external-deps policy rules out `crossbeam-epoch`, so
//! this module implements the minimal counter-based variant the cache
//! needs: readers [`EpochDomain::pin`] the domain before traversing
//! atomically-published pointers, writers unlink a pointer and hand its
//! destructor to [`EpochDomain::defer`], and the domain runs the
//! destructor only once every reader that could still observe the pointer
//! has unpinned.
//!
//! # Scheme
//!
//! A global epoch counter advances monotonically. Pins are counted in one
//! of three slots keyed by `epoch % 3`: a pinning reader reads the epoch,
//! increments its slot, then re-validates the epoch (retrying if it moved,
//! so a validated pin is always attributed to the epoch that was current
//! when the increment landed). Deferred destructors are tagged with the
//! epoch at retire time. Advancing from epoch `e` to `e + 1` requires the
//! pin slot of epoch `e - 1` to be zero; after a successful advance to
//! `E`, every destructor retired at epoch `r ≤ E - 3` runs.
//!
//! **Safety argument.** A reader that can still observe a pointer
//! unlinked-and-retired at epoch `r` must have pinned at some epoch
//! `p ≤ r` (its pin validation preceded the unlink in the sequentially
//! consistent order, and the epoch is monotone). The three advances
//! `r → r+1 → r+2 → r+3` check the pin slots of epochs `r-1`, `r` and
//! `r+1 ≡ r-2 (mod 3)` respectively — between them, every residue class
//! mod 3, hence every `p ≤ r`, is required to hit zero *after* the
//! reader's validated increment. The epoch therefore cannot reach `r + 3`
//! until that reader unpins, and reclamation at `E ≥ r + 3` is safe. A
//! destructor whose retire-epoch read was delayed lands with a *larger*
//! tag and is reclaimed later, which is always safe.
//!
//! Unlike per-thread-slot EBR designs, pinning touches a shared counter
//! rather than a registered thread-local epoch record, which keeps the
//! implementation small and registration-free. To stop every pinning
//! thread from hammering one cache line, each slot's count is striped
//! across [`PIN_LANES`] cache-line-padded lanes: a thread is assigned a
//! lane once (round-robin, thread-local) and always increments that lane,
//! so readers on different lanes never share a line. An advance scans all
//! lanes of the prior slot; a slot is unpinned only when every lane reads
//! zero. Each lane individually satisfies the safety argument above (a
//! validated pin lives entirely in one lane), so striping changes the
//! constant factors, not the proof.
//!
//! All epoch-protocol atomics use `SeqCst`: the safety argument above
//! leans on a single total order across the epoch counter, the pin slots
//! and the protected pointers, and every access here is already an RMW or
//! adjacent to one, so weaker orderings would save nothing measurable.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A queued destructor with the epoch at which its pointer was retired.
struct Deferred {
    retired_at: u64,
    run: Box<dyn FnOnce() + Send>,
}

/// How many queued destructors trigger an opportunistic
/// [`EpochDomain::try_advance`] from [`EpochDomain::defer`].
const COLLECT_THRESHOLD: usize = 64;

/// Cache-line-padded lanes per pin slot. Readers scatter across lanes by
/// thread, so concurrent pins on different lanes touch disjoint lines;
/// advances pay `PIN_LANES` loads per attempt, which is noise next to the
/// reclamation they gate.
pub const PIN_LANES: usize = 16;

/// One lane of a pin slot, padded to a cache line so neighbouring lanes
/// never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PinLane(AtomicU64);

/// The lane this thread's pins land in: assigned round-robin on first use
/// and stable for the thread's lifetime.
fn reader_lane() -> usize {
    use std::cell::Cell;
    static NEXT_LANE: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static LANE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    LANE.with(|lane| {
        let mut assigned = lane.get();
        if assigned == usize::MAX {
            assigned = (NEXT_LANE.fetch_add(1, Ordering::Relaxed) as usize) % PIN_LANES;
            lane.set(assigned);
        }
        assigned
    })
}

/// Counters describing a domain's reclamation activity (diagnostics and
/// tests; all monotone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpochStats {
    /// Total successful pins.
    pub pins: u64,
    /// Successful epoch advances.
    pub advances: u64,
    /// Destructors executed.
    pub reclaimed: u64,
    /// Destructors queued (including ones since reclaimed).
    pub deferred: u64,
}

/// An epoch-based reclamation domain: one per data structure (the cache
/// creates one per [`ShardedCacheStorage`][sharded]).
///
/// [sharded]: ../../tcache_cache/storage/struct.ShardedCacheStorage.html
pub struct EpochDomain {
    /// The global epoch; strictly monotone.
    epoch: AtomicU64,
    /// Active pin counts, keyed by `epoch % 3` at pin-validation time and
    /// striped across [`PIN_LANES`] padded lanes per slot.
    pins: [[PinLane; PIN_LANES]; 3],
    /// Destructors awaiting reclamation, each tagged with its retire epoch.
    garbage: Mutex<Vec<Deferred>>,
    pins_total: AtomicU64,
    advances: AtomicU64,
    reclaimed: AtomicU64,
    deferred_total: AtomicU64,
}

impl fmt::Debug for EpochDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochDomain")
            .field("epoch", &self.epoch.load(Ordering::SeqCst))
            .field("pinned", &self.pinned())
            .field("queued", &self.queued())
            .finish()
    }
}

impl Default for EpochDomain {
    fn default() -> Self {
        EpochDomain::new()
    }
}

impl EpochDomain {
    /// Creates a domain at epoch zero with nothing pinned or queued.
    pub fn new() -> Self {
        EpochDomain {
            epoch: AtomicU64::new(0),
            pins: std::array::from_fn(|_| std::array::from_fn(|_| PinLane::default())),
            garbage: Mutex::new(Vec::new()),
            pins_total: AtomicU64::new(0),
            advances: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            deferred_total: AtomicU64::new(0),
        }
    }

    /// Pins the current epoch. While the returned [`EpochGuard`] lives, no
    /// pointer retired at or after the pinned epoch is reclaimed, so the
    /// caller may traverse atomically-published pointers it reads.
    ///
    /// Lock-free: retries only while the epoch advances concurrently.
    #[must_use = "dropping the guard immediately unpins; the traversal would be unprotected"]
    pub fn pin(&self) -> EpochGuard<'_> {
        let lane = reader_lane();
        loop {
            let epoch = self.epoch.load(Ordering::SeqCst);
            let slot = (epoch % 3) as usize;
            self.pins[slot][lane].0.fetch_add(1, Ordering::SeqCst);
            if self.epoch.load(Ordering::SeqCst) == epoch {
                self.pins_total.fetch_add(1, Ordering::Relaxed);
                return EpochGuard {
                    domain: self,
                    slot,
                    lane,
                };
            }
            // The epoch moved between read and increment: the pin cannot be
            // attributed to a single epoch, so undo and retry.
            let prev = self.pins[slot][lane].0.fetch_sub(1, Ordering::SeqCst);
            debug_assert!(prev > 0, "pin depth went negative during retry");
        }
    }

    /// Queues `destructor` to run once every pin that could still observe
    /// the retired pointer has been dropped (at least three epoch advances
    /// from now). Call *after* the pointer has been unlinked from every
    /// shared location.
    pub fn defer(&self, destructor: impl FnOnce() + Send + 'static) {
        let retired_at = self.epoch.load(Ordering::SeqCst);
        let queued = {
            let mut garbage = self.garbage.lock().expect("epoch garbage poisoned");
            garbage.push(Deferred {
                retired_at,
                run: Box::new(destructor),
            });
            garbage.len()
        };
        self.deferred_total.fetch_add(1, Ordering::Relaxed);
        if queued >= COLLECT_THRESHOLD {
            self.try_advance();
        }
    }

    /// Attempts one epoch advance, reclaiming everything retired three or
    /// more epochs ago on success. Fails (returning `false`) if a pin from
    /// the previous epoch is still live or another thread advanced first.
    pub fn try_advance(&self) -> bool {
        let epoch = self.epoch.load(Ordering::SeqCst);
        // Epoch `epoch - 1` lives in slot `(epoch + 2) % 3`.
        let prev_slot = ((epoch + 2) % 3) as usize;
        if self.slot_pinned(prev_slot) != 0 {
            return false;
        }
        if self
            .epoch
            .compare_exchange(epoch, epoch + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return false;
        }
        self.advances.fetch_add(1, Ordering::Relaxed);
        self.collect(epoch + 1);
        true
    }

    /// Runs every destructor retired at epoch `current - 3` or earlier.
    fn collect(&self, current: u64) {
        let ripe: Vec<Deferred> = {
            let mut garbage = self.garbage.lock().expect("epoch garbage poisoned");
            let mut ripe = Vec::new();
            let mut i = 0;
            while i < garbage.len() {
                if garbage[i].retired_at + 3 <= current {
                    ripe.push(garbage.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            ripe
        };
        if !ripe.is_empty() {
            self.reclaimed
                .fetch_add(ripe.len() as u64, Ordering::Relaxed);
            for deferred in ripe {
                (deferred.run)();
            }
        }
    }

    /// Advances repeatedly until the queue is empty or an advance fails
    /// (some epoch still pinned). With nothing pinned this always drains
    /// the queue completely.
    pub fn flush(&self) {
        // Three advances age the freshest garbage past the reclaim horizon;
        // one extra attempt covers garbage deferred mid-flush by destructors.
        for _ in 0..4 {
            if self.queued() == 0 || !self.try_advance() {
                return;
            }
        }
    }

    /// The current epoch (diagnostics).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Live pins in one slot, summed across its lanes.
    fn slot_pinned(&self, slot: usize) -> u64 {
        self.pins[slot]
            .iter()
            .map(|lane| lane.0.load(Ordering::SeqCst))
            .sum()
    }

    /// Total pins currently live across all epochs.
    pub fn pinned(&self) -> u64 {
        (0..3).map(|slot| self.slot_pinned(slot)).sum()
    }

    /// Number of destructors queued and not yet reclaimed.
    pub fn queued(&self) -> usize {
        self.garbage.lock().expect("epoch garbage poisoned").len()
    }

    /// Reclamation counters.
    pub fn stats(&self) -> EpochStats {
        EpochStats {
            pins: self.pins_total.load(Ordering::Relaxed),
            advances: self.advances.load(Ordering::Relaxed),
            reclaimed: self.reclaimed.load(Ordering::Relaxed),
            deferred: self.deferred_total.load(Ordering::Relaxed),
        }
    }

    /// Debug-asserts the quiescent-state invariants: with no live pins the
    /// retire queue must drain completely. Call from tests at points where
    /// no other thread is pinning or deferring concurrently (the check is
    /// meaningless mid-race). A no-op in release builds.
    pub fn debug_check_quiescent(&self) {
        if cfg!(debug_assertions) {
            assert_eq!(self.pinned(), 0, "quiescence check ran with live pins");
            self.flush();
            assert_eq!(
                self.queued(),
                0,
                "retire queue must drain once every pin is dropped"
            );
        }
    }
}

impl Drop for EpochDomain {
    fn drop(&mut self) {
        // Exclusive access: no pins can exist, so everything queued is safe
        // to reclaim regardless of its retire epoch.
        let garbage = std::mem::take(self.garbage.get_mut().expect("epoch garbage poisoned"));
        for deferred in garbage {
            (deferred.run)();
        }
    }
}

/// An active pin on an [`EpochDomain`]. Pointers read from the protected
/// structure while the guard is live remain valid until the guard drops.
#[must_use = "dropping the guard immediately unpins; the traversal would be unprotected"]
pub struct EpochGuard<'a> {
    domain: &'a EpochDomain,
    slot: usize,
    lane: usize,
}

impl fmt::Debug for EpochGuard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochGuard").field("slot", &self.slot).finish()
    }
}

impl Drop for EpochGuard<'_> {
    fn drop(&mut self) {
        let prev = self.domain.pins[self.slot][self.lane]
            .0
            .fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "pin depth went negative on unpin");
        if prev == 1 && self.domain.pinned() == 0 {
            // Last pin out: amortized reclamation so an idle domain does
            // not sit on garbage until the next writer shows up.
            self.domain.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn unpinned_domain_reclaims_after_three_advances() {
        let domain = EpochDomain::new();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        domain.defer(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        assert!(domain.try_advance());
        assert!(domain.try_advance());
        assert_eq!(ran.load(Ordering::SeqCst), 0, "two advances are not enough");
        assert!(domain.try_advance());
        assert_eq!(ran.load(Ordering::SeqCst), 1, "third advance reclaims");
        assert_eq!(domain.stats().reclaimed, 1);
    }

    #[test]
    fn live_pin_blocks_advance_and_unpin_flushes() {
        let domain = EpochDomain::new();
        let ran = Arc::new(AtomicUsize::new(0));
        let guard = domain.pin();
        let r = Arc::clone(&ran);
        domain.defer(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        // The pin sits in epoch 0's slot; advance 0→1 checks epoch −1's
        // (empty) slot and succeeds, but advance 1→2 checks epoch 0's slot
        // and must stall on the guard.
        assert!(domain.try_advance());
        assert!(!domain.try_advance(), "pinned epoch must block the advance");
        assert_eq!(ran.load(Ordering::SeqCst), 0);
        drop(guard); // Unpin-to-zero flushes the queue.
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        domain.debug_check_quiescent();
    }

    #[test]
    fn pinned_reader_never_observes_reclaimed_garbage() {
        // A reader pins, a writer retires a pointer and advances as hard as
        // it can; the destructor must not run until the reader unpins.
        let domain = Arc::new(EpochDomain::new());
        let freed = Arc::new(AtomicUsize::new(0));
        let guard = domain.pin();
        for _ in 0..10 {
            let f = Arc::clone(&freed);
            domain.defer(move || {
                f.fetch_add(1, Ordering::SeqCst);
            });
            domain.try_advance();
        }
        assert_eq!(
            freed.load(Ordering::SeqCst),
            0,
            "garbage reclaimed under a live pin"
        );
        drop(guard);
        domain.flush();
        assert_eq!(freed.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn defer_threshold_triggers_collection() {
        let domain = EpochDomain::new();
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..(COLLECT_THRESHOLD * 4) {
            let r = Arc::clone(&ran);
            domain.defer(move || {
                r.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Unpinned defers self-collect once the threshold trips; most of
        // the queue must already be gone without an explicit flush.
        assert!(
            ran.load(Ordering::SeqCst) > 0,
            "threshold collection never fired"
        );
        domain.flush();
        assert_eq!(ran.load(Ordering::SeqCst), COLLECT_THRESHOLD * 4);
    }

    #[test]
    fn drop_reclaims_everything_queued() {
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let domain = EpochDomain::new();
            let r = Arc::clone(&ran);
            domain.defer(move || {
                r.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(ran.load(Ordering::SeqCst), 1, "Drop must not leak garbage");
    }

    #[test]
    fn concurrent_readers_and_retiring_writers_stress() {
        // 4 reader threads pin/unpin in a tight loop around a shared
        // "live flag" per node; the writer retires nodes whose destructor
        // asserts no reader is still inside its critical section with the
        // node observed. The assertion encodes "no reader observes a
        // reclaimed entry" directly.
        let domain = Arc::new(EpochDomain::new());
        let node = Arc::new(std::sync::atomic::AtomicU64::new(1));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let domain = Arc::clone(&domain);
                let node = Arc::clone(&node);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        let _guard = domain.pin();
                        // Simulates dereferencing a published pointer: the
                        // value must never be the poison a destructor wrote.
                        let observed = node.load(Ordering::SeqCst);
                        assert_ne!(observed, u64::MAX, "reader saw reclaimed state");
                    }
                })
            })
            .collect();
        for generation in 2..200u64 {
            let node_ref = Arc::clone(&node);
            let expected = generation;
            // Publish the new generation (the unlink), then retire the old:
            // the destructor poisons only if it could prove no reader can
            // see it — here it just flips to the next value; the poison
            // write happens when reclamation would be premature.
            node.store(generation, Ordering::SeqCst);
            domain.defer(move || {
                // By the time this runs, every reader pinned before the
                // store above has unpinned; overwriting with the current
                // generation is invisible. Writing MAX would only be seen
                // by a reader that outlived its pin.
                node_ref
                    .compare_exchange(expected, expected, Ordering::SeqCst, Ordering::SeqCst)
                    .ok();
            });
            domain.try_advance();
        }
        stop.store(true, Ordering::SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        domain.flush();
        domain.debug_check_quiescent();
        assert!(domain.stats().advances > 0);
    }
}
