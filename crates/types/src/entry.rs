//! Versioned object representations exchanged between database and cache.

use crate::dependency::DependencyList;
use crate::ids::{ObjectId, Version};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A `(value, version)` pair for a single object, without dependency
/// information. This is what a plain, consistency-unaware cache would store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VersionedObject {
    /// The object identifier.
    pub id: ObjectId,
    /// The value observed.
    pub value: Value,
    /// The version of the transaction that last wrote the object.
    pub version: Version,
}

impl VersionedObject {
    /// Creates a versioned object.
    #[inline]
    pub fn new(id: ObjectId, value: Value, version: Version) -> Self {
        VersionedObject { id, value, version }
    }
}

impl fmt::Display for VersionedObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.id, self.version)
    }
}

/// The full representation of an object as stored by the T-Cache database
/// and shipped to caches on misses: value, version and dependency list
/// (§III-A).
///
/// The dependency list is immutable once installed and shared by reference
/// count: the store, every cache stripe that holds the entry and every
/// transaction record that observed it all point at the same allocation, so
/// handing an entry to a reader is a couple of refcount bumps instead of a
/// deep copy. To replace the list (e.g. re-bounding on a cache miss), build
/// a new list and assign a fresh `Arc`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectEntry {
    /// The object identifier.
    pub id: ObjectId,
    /// The current value.
    pub value: Value,
    /// The version of the transaction that last wrote the object.
    pub version: Version,
    /// Identifiers and versions of objects this version depends on.
    pub dependencies: Arc<DependencyList>,
}

impl ObjectEntry {
    /// Creates an entry with an empty dependency list.
    pub fn initial(id: ObjectId, value: Value) -> Self {
        ObjectEntry {
            id,
            value,
            version: Version::INITIAL,
            dependencies: Arc::new(DependencyList::unbounded()),
        }
    }

    /// Creates a fully specified entry. Accepts either an owned
    /// [`DependencyList`] or an already shared `Arc<DependencyList>`.
    pub fn new(
        id: ObjectId,
        value: Value,
        version: Version,
        dependencies: impl Into<Arc<DependencyList>>,
    ) -> Self {
        ObjectEntry {
            id,
            value,
            version,
            dependencies: dependencies.into(),
        }
    }

    /// Returns the `(value, version)` view of this entry, dropping the
    /// dependency list.
    #[inline]
    pub fn to_versioned(&self) -> VersionedObject {
        VersionedObject::new(self.id, self.value.clone(), self.version)
    }

    /// Approximate in-memory size of the entry in bytes (value payload plus
    /// 16 bytes per dependency entry plus the version); used by overhead
    /// statistics.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.value.size_bytes() + 8 + 16 * self.dependencies.len()
    }
}

impl fmt::Display for ObjectEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{} deps={}",
            self.id, self.version, self.dependencies
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_entry_has_zero_version_and_no_deps() {
        let e = ObjectEntry::initial(ObjectId(3), Value::new(7));
        assert_eq!(e.version, Version::INITIAL);
        assert!(e.dependencies.is_empty());
        assert_eq!(e.value.numeric(), 7);
    }

    #[test]
    fn to_versioned_drops_dependencies() {
        let mut deps = DependencyList::bounded(2);
        deps.record(ObjectId(1), Version(1));
        let e = ObjectEntry::new(ObjectId(3), Value::new(7), Version(9), deps);
        let v = e.to_versioned();
        assert_eq!(v.id, ObjectId(3));
        assert_eq!(v.version, Version(9));
        assert_eq!(v.value.numeric(), 7);
    }

    #[test]
    fn clones_share_the_dependency_list() {
        let mut deps = DependencyList::bounded(4);
        deps.record(ObjectId(1), Version(1));
        let e = ObjectEntry::new(ObjectId(3), Value::new(7), Version(9), deps);
        let copy = e.clone();
        assert!(
            std::sync::Arc::ptr_eq(&e.dependencies, &copy.dependencies),
            "cloning an entry must not deep-copy its dependency list"
        );
    }

    #[test]
    fn size_accounts_for_dependencies() {
        let mut deps = DependencyList::bounded(3);
        deps.record(ObjectId(1), Version(1));
        deps.record(ObjectId(2), Version(2));
        let e = ObjectEntry::new(ObjectId(3), Value::new(7), Version(9), deps);
        assert_eq!(e.size_bytes(), 8 + 8 + 16 * 2);
    }

    #[test]
    fn display_formats() {
        let e = ObjectEntry::initial(ObjectId(3), Value::new(7));
        assert!(e.to_string().contains("o3@v0"));
        assert!(e.to_versioned().to_string().contains("o3@v0"));
    }
}
