//! Protocol-level action and trace vocabulary for the model checker.
//!
//! The explicit-state model in `tcache-model` explores interleavings of a
//! small closed system — a backend database, N edge caches and K scripted
//! transactions — one [`ProtocolAction`] at a time. A [`ProtocolTrace`] (a
//! sequence of actions starting from the initial state) is therefore a
//! complete, replayable description of one execution: the explorer emits
//! traces as counterexamples, and the differential bridge in `tcache-sim`
//! replays the very same trace against the real `Database`/`EdgeCache`
//! stack.
//!
//! The vocabulary lives here, in `tcache-types`, so that the model crate
//! (which must not depend on the implementation) and the bridge (which
//! drives the implementation) share one definition with no duplication.
//!
//! Actions reference scripted work by *index* — `update` indexes the
//! checked configuration's update-transaction table, `txn` its read-only
//! scripts, `cache` its cache table — keeping the trace representation
//! small, hashable and independent of identifier allocation.

use std::fmt;

/// One atomic step of the modeled protocol.
///
/// Each variant corresponds to an operation of the real system with its
/// concurrency collapsed to a single serializable step (update 2PC becomes
/// an atomic install-and-publish; a read-only transaction advances one key
/// per step so that commits and invalidation deliveries can interleave
/// with it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProtocolAction {
    /// The update transaction at index `update` of the configuration
    /// commits: it installs new versions for its whole write set atomically
    /// and publishes one sequenced invalidation per written object to every
    /// connected cache's in-flight queue.
    UpdateCommit {
        /// Index into the configuration's update table.
        update: usize,
    },
    /// Cache `cache` receives the invalidation at position `index` of its
    /// in-flight queue. `index > 0` models network reordering: a later
    /// invalidation overtakes earlier ones, which stay queued.
    Deliver {
        /// Index into the configuration's cache table.
        cache: usize,
        /// Position in the cache's in-flight queue (0 = oldest).
        index: usize,
    },
    /// The invalidation at position `index` of cache `cache`'s in-flight
    /// queue is lost in transit and will never arrive.
    DropInvalidation {
        /// Index into the configuration's cache table.
        cache: usize,
        /// Position in the cache's in-flight queue (0 = oldest).
        index: usize,
    },
    /// The read-only transaction at index `txn` of the configuration
    /// executes its next scripted read at its serving cache. If the cache
    /// has degraded to pass-through mode when the transaction *starts*, the
    /// single step executes the whole remaining script against the backend
    /// (mirroring the implementation, where a pass-through transaction is
    /// one synchronous backend round).
    ReadStep {
        /// Index into the configuration's read-only script table.
        txn: usize,
    },
    /// Cache `cache` crashes: its store and in-flight queue are lost and
    /// its link is severed until [`ProtocolAction::Restart`].
    Crash {
        /// Index into the configuration's cache table.
        cache: usize,
    },
    /// A crashed cache restarts cold, adopting the backend's current
    /// invalidation stream position.
    Restart {
        /// Index into the configuration's cache table.
        cache: usize,
    },
    /// Cache `cache` is partitioned from the database: its store keeps
    /// serving (staling) reads but invalidations no longer arrive; queued
    /// in-flight invalidations are lost with the link.
    Partition {
        /// Index into the configuration's cache table.
        cache: usize,
    },
    /// A partitioned (or degraded) cache reconnects, resyncing first when
    /// the recovery policy calls for it.
    Reconnect {
        /// Index into the configuration's cache table.
        cache: usize,
    },
    /// The logical clock advances by one tick. Ticks are the only source of
    /// time in the model; a disconnected cache degrades to pass-through
    /// when more ticks than its staleness budget have elapsed since the
    /// partition.
    Tick,
}

impl ProtocolAction {
    /// A short stable mnemonic for the action kind (used in reports).
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolAction::UpdateCommit { .. } => "update-commit",
            ProtocolAction::Deliver { .. } => "deliver",
            ProtocolAction::DropInvalidation { .. } => "drop",
            ProtocolAction::ReadStep { .. } => "read-step",
            ProtocolAction::Crash { .. } => "crash",
            ProtocolAction::Restart { .. } => "restart",
            ProtocolAction::Partition { .. } => "partition",
            ProtocolAction::Reconnect { .. } => "reconnect",
            ProtocolAction::Tick => "tick",
        }
    }
}

impl fmt::Display for ProtocolAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolAction::UpdateCommit { update } => write!(f, "update-commit(u{update})"),
            ProtocolAction::Deliver { cache, index } => {
                write!(f, "deliver(c{cache}, queue[{index}])")
            }
            ProtocolAction::DropInvalidation { cache, index } => {
                write!(f, "drop(c{cache}, queue[{index}])")
            }
            ProtocolAction::ReadStep { txn } => write!(f, "read-step(t{txn})"),
            ProtocolAction::Crash { cache } => write!(f, "crash(c{cache})"),
            ProtocolAction::Restart { cache } => write!(f, "restart(c{cache})"),
            ProtocolAction::Partition { cache } => write!(f, "partition(c{cache})"),
            ProtocolAction::Reconnect { cache } => write!(f, "reconnect(c{cache})"),
            ProtocolAction::Tick => write!(f, "tick"),
        }
    }
}

/// A replayable execution: the sequence of actions applied from the initial
/// state of a checked configuration.
pub type ProtocolTrace = Vec<ProtocolAction>;

/// Renders a trace as a numbered, one-action-per-line listing (the format
/// used for counterexample reports).
pub fn format_trace(trace: &[ProtocolAction]) -> String {
    use fmt::Write as _;
    let mut out = String::new();
    for (i, action) in trace.iter().enumerate() {
        let _ = writeln!(out, "  {i:>3}. {action}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_and_stable() {
        assert_eq!(
            ProtocolAction::UpdateCommit { update: 0 }.to_string(),
            "update-commit(u0)"
        );
        assert_eq!(
            ProtocolAction::Deliver { cache: 1, index: 2 }.to_string(),
            "deliver(c1, queue[2])"
        );
        assert_eq!(ProtocolAction::Tick.to_string(), "tick");
        assert_eq!(ProtocolAction::Tick.kind(), "tick");
    }

    #[test]
    fn trace_formatting_numbers_actions() {
        let trace = vec![
            ProtocolAction::UpdateCommit { update: 0 },
            ProtocolAction::ReadStep { txn: 1 },
        ];
        let rendered = format_trace(&trace);
        assert!(rendered.contains("0. update-commit(u0)"));
        assert!(rendered.contains("1. read-step(t1)"));
    }
}
