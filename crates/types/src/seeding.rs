//! Deterministic derivation of per-component RNG seeds.
//!
//! A multi-cache run owns one invalidation channel per cache, each with its
//! own randomness stream. Deriving every channel seed from the single run
//! seed with a strong mixer keeps runs reproducible — the stream a cache
//! observes depends only on `(run_seed, CacheId)`, never on how many other
//! caches exist or in which order events interleave — while guaranteeing
//! that nearby run seeds (`seed`, `seed + 1`, …) do not produce correlated
//! streams. Future derived streams should claim their own `stream` index
//! range here rather than hand-rolling `seed + k` offsets.

use crate::ids::CacheId;

/// Mixes `(run_seed, stream)` into an independent 64-bit seed using the
/// splitmix64 finalizer. Distinct `stream` values yield statistically
/// independent seeds even when `run_seed` values are small and consecutive.
pub fn derive_stream_seed(run_seed: u64, stream: u64) -> u64 {
    let mut z = run_seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(stream)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The seed of the invalidation channel feeding `cache`, derived from the
/// run seed. Reproducible independent of thread or event interleaving and
/// of how many caches the run deploys.
///
/// The in-reactor live delivery tasks use the *same* stream for their loss
/// decisions, so with a latency model that consumes no randomness (the
/// constant model draws nothing) the drop pattern a cache observes is
/// bit-identical across the discrete-event and live execution planes.
pub fn cache_channel_seed(run_seed: u64, cache: CacheId) -> u64 {
    // Tag the stream space so cache channels can never collide with other
    // derived streams that claim the small indices.
    derive_stream_seed(run_seed, 0x00ca_c4e0_0000_0000 | u64::from(cache.0))
}

/// The seed of the latency stream of `cache`'s live delivery task. Kept
/// separate from [`cache_channel_seed`] so delay sampling never perturbs
/// the loss stream: the drop pattern stays a pure function of
/// `(run_seed, CacheId, message index)` — the invariant the cross-plane
/// parity tests and the drop-count oracle rely on.
pub fn cache_delay_seed(run_seed: u64, cache: CacheId) -> u64 {
    derive_stream_seed(run_seed, 0x00de_1a70_0000_0000 | u64::from(cache.0))
}

/// The seed of the run's fault-schedule stream: crash instants, partition
/// windows and delay spikes are sampled from this stream when a fault plan
/// is generated rather than written by hand. One stream per run (fault
/// plans are global, not per cache), disjoint from every per-cache loss and
/// delay stream so injecting faults can never perturb the drop pattern a
/// cache would otherwise observe.
pub fn fault_seed(run_seed: u64) -> u64 {
    derive_stream_seed(run_seed, 0x00fa_0170_0000_0000)
}

/// The seed of the run's Zipfian key stream. The scenario engine derives
/// every key choice as a pure function of `(zipf_seed(run_seed), draw
/// index)`, so the key sequence is identical no matter how many worker
/// threads execute the scenario or how their work interleaves. One stream
/// per run, disjoint from every loss, delay and fault stream so changing
/// the workload skew can never perturb a drop pattern.
pub fn zipf_seed(run_seed: u64) -> u64 {
    derive_stream_seed(run_seed, 0x0021_bf00_0000_0000)
}

/// The seed of one of the run's scenario decision streams — storm
/// redirection coins, cache-assignment draws, modeled-latency jitter and
/// the like. Each decision family claims its own `stream` index so that
/// adding a new scenario primitive never shifts the draws of an existing
/// one; every stream stays disjoint from the loss, delay, fault and Zipf
/// streams.
pub fn scenario_seed(run_seed: u64, stream: u64) -> u64 {
    derive_stream_seed(run_seed, 0x005c_e4a0_0000_0000 | stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derived_seeds_are_deterministic() {
        assert_eq!(derive_stream_seed(42, 7), derive_stream_seed(42, 7));
        assert_eq!(
            cache_channel_seed(42, CacheId(3)),
            cache_channel_seed(42, CacheId(3))
        );
    }

    #[test]
    fn distinct_streams_yield_distinct_seeds() {
        let mut seen = HashSet::new();
        for run_seed in 0..16u64 {
            for stream in 0..64u64 {
                assert!(seen.insert(derive_stream_seed(run_seed, stream)));
            }
        }
    }

    #[test]
    fn cache_seeds_differ_per_cache_and_from_plain_streams() {
        let a = cache_channel_seed(1, CacheId(0));
        let b = cache_channel_seed(1, CacheId(1));
        assert_ne!(a, b);
        // The tagged stream space keeps cache channels disjoint from any
        // future derived streams that claim the low indices.
        for stream in 0..8u64 {
            assert_ne!(a, derive_stream_seed(1, stream));
        }
    }

    #[test]
    fn delay_streams_are_disjoint_from_loss_streams() {
        // The latency stream of a cache's live delivery task must never
        // alias its loss stream (or any other cache's), so delay sampling
        // cannot perturb the drop pattern.
        let mut seen = HashSet::new();
        for cache in 0..32u32 {
            assert!(seen.insert(cache_channel_seed(5, CacheId(cache))));
            assert!(seen.insert(cache_delay_seed(5, CacheId(cache))));
        }
        assert_eq!(
            cache_delay_seed(5, CacheId(1)),
            cache_delay_seed(5, CacheId(1))
        );
    }

    #[test]
    fn fault_stream_is_disjoint_from_loss_and_delay_streams() {
        // The fault schedule must never alias any cache's loss or delay
        // stream: a run with faults injected observes the exact same drop
        // pattern as the same run without.
        let mut seen = HashSet::new();
        for run_seed in 0..8u64 {
            assert!(seen.insert(fault_seed(run_seed)));
            for cache in 0..16u32 {
                assert!(seen.insert(cache_channel_seed(run_seed, CacheId(cache))));
                assert!(seen.insert(cache_delay_seed(run_seed, CacheId(cache))));
            }
        }
        assert_eq!(fault_seed(3), fault_seed(3));
    }

    #[test]
    fn zipf_and_scenario_streams_are_disjoint_from_all_others() {
        // The workload key stream and the scenario decision streams must
        // never alias a loss, delay or fault stream (or each other):
        // changing the scenario mix leaves the drop pattern untouched, and
        // vice versa.
        let mut seen = HashSet::new();
        for run_seed in 0..8u64 {
            assert!(seen.insert(zipf_seed(run_seed)));
            assert!(seen.insert(fault_seed(run_seed)));
            for stream in 0..16u64 {
                assert!(seen.insert(scenario_seed(run_seed, stream)));
            }
            for cache in 0..16u32 {
                assert!(seen.insert(cache_channel_seed(run_seed, CacheId(cache))));
                assert!(seen.insert(cache_delay_seed(run_seed, CacheId(cache))));
            }
        }
        assert_eq!(zipf_seed(7), zipf_seed(7));
        assert_eq!(scenario_seed(7, 3), scenario_seed(7, 3));
    }

    #[test]
    fn consecutive_run_seeds_are_decorrelated() {
        // A weak mixer would map (seed, stream) and (seed + 1, stream - k)
        // to nearby outputs; splitmix64 outputs should share no obvious
        // structure. Spot-check that low bits differ across neighbours.
        let outputs: Vec<u64> = (0..32).map(|s| derive_stream_seed(s, 0)).collect();
        let distinct_low_bytes: HashSet<u8> =
            outputs.iter().map(|&v| (v & 0xff) as u8).collect();
        assert!(distinct_low_bytes.len() > 16);
    }
}
