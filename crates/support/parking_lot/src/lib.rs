//! Offline, API-compatible subset of the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s ergonomics: `lock()`,
//! `read()` and `write()` return guards directly (no `Result`), and a
//! poisoned lock — which can only arise from a panic while holding the
//! guard — is simply recovered, matching `parking_lot`'s "no poisoning"
//! semantics closely enough for this workspace.
//!
//! The real `parking_lot` is faster than `std` under heavy contention; the
//! hot-path design in `tcache-cache` (lock striping, short critical
//! sections) keeps contention per lock low, which is where `std`'s mutexes
//! (futex-based on Linux) are entirely adequate.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` method never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock whose `read`/`write` methods never fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire a shared read lock without blocking; returns
    /// `None` if a writer holds (or `std` believes a writer is waiting for)
    /// the lock. This is the primitive behind the seqlock read path in
    /// `tcache-db`: readers never sleep behind a writer, they retry.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire the exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn rwlock_try_read_and_try_write() {
        let l = RwLock::new(7);
        {
            let r = l.try_read().expect("uncontended try_read succeeds");
            assert_eq!(*r, 7);
            // Shared with an ordinary reader, but a writer would block.
            let r2 = l.read();
            assert_eq!(*r2, 7);
            assert!(l.try_write().is_none(), "readers block try_write");
        }
        {
            let mut w = l.try_write().expect("uncontended try_write succeeds");
            *w = 8;
            assert!(l.try_read().is_none(), "a writer blocks try_read");
        }
        assert_eq!(*l.read(), 8);
    }

    #[test]
    fn mutex_is_usable_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock is recovered after a panic");
    }
}
