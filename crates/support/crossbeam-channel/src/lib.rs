//! Offline, API-compatible subset of the `crossbeam-channel` crate.
//!
//! Provides the unbounded and bounded MPSC channel surface (send /
//! `try_send`, `recv` / `try_recv` / `recv_timeout`), implemented over
//! `std::sync::mpsc`. The thread-per-cache invalidation plane baseline in
//! `tcache-bench` runs on these queues; `tcache-net`'s transport has moved
//! to its own waker-aware bounded pipes (which need deque access and waker
//! storage a plain channel cannot offer), so this shim is the drop-in for
//! code that wants plain channel semantics without the overflow-policy
//! machinery. The bounded surface (`bounded`, `try_send`, `recv_timeout`)
//! currently has no in-tree consumer beyond its tests; it is kept
//! API-complete so swapping in the real crate stays a one-line change.
//! (The real crate also offers MPMC receivers and `select!`; nothing in
//! this workspace needs them.)

use std::fmt;
use std::sync::mpsc;
use std::time::Duration;

/// Error returned by [`Sender::send`] when the receiver has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and currently at capacity; the value is
    /// handed back.
    Full(T),
    /// The receiver has been dropped; the value is handed back.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recovers the value that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }

    /// Returns `true` if the failure was a full channel.
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }

    /// Returns `true` if the failure was a dropped receiver.
    pub fn is_disconnected(&self) -> bool {
        matches!(self, TrySendError::Disconnected(_))
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Receiver::recv`] when the channel is disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on a disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// All senders have been dropped and the channel is drained.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "channel empty"),
            TryRecvError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the timeout elapsed.
    Timeout,
    /// All senders have been dropped and the channel is drained.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "receive timed out"),
            RecvTimeoutError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Either flavour of sending endpoint; bounded senders block when full.
#[derive(Debug, Clone)]
enum Tx<T> {
    Unbounded(mpsc::Sender<T>),
    Bounded(mpsc::SyncSender<T>),
}

/// The sending half of a channel. Cloneable.
#[derive(Debug, Clone)]
pub struct Sender<T> {
    tx: Tx<T>,
}

/// The receiving half of a channel.
#[derive(Debug)]
pub struct Receiver<T> {
    rx: mpsc::Receiver<T>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (
        Sender {
            tx: Tx::Unbounded(tx),
        },
        Receiver { rx },
    )
}

/// Creates a bounded channel holding at most `cap` in-flight messages.
/// [`Sender::send`] blocks while the channel is full; [`Sender::try_send`]
/// fails with [`TrySendError::Full`] instead.
///
/// Unlike the real crate, `cap == 0` is treated as capacity 1 rather than a
/// rendezvous channel (nothing in this workspace uses rendezvous semantics).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap.max(1));
    (
        Sender {
            tx: Tx::Bounded(tx),
        },
        Receiver { rx },
    )
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while a bounded channel is full and failing
    /// only if the receiver has been dropped.
    ///
    /// # Errors
    /// Returns [`SendError`] carrying the value back when disconnected.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &self.tx {
            Tx::Unbounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            Tx::Bounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
        }
    }

    /// Sends `value` without blocking.
    ///
    /// # Errors
    /// [`TrySendError::Full`] when a bounded channel is at capacity,
    /// [`TrySendError::Disconnected`] when the receiver has been dropped.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        match &self.tx {
            Tx::Unbounded(tx) => tx
                .send(value)
                .map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v)),
            Tx::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            }),
        }
    }
}

impl<T> Receiver<T> {
    /// Receives a value without blocking.
    ///
    /// # Errors
    /// [`TryRecvError::Empty`] when no message is queued,
    /// [`TryRecvError::Disconnected`] when the channel is closed and empty.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.rx.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Blocks until a value arrives or every sender is dropped.
    ///
    /// # Errors
    /// Returns [`RecvError`] when the channel is closed and empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.rx.recv().map_err(|_| RecvError)
    }

    /// Blocks until a value arrives, the timeout elapses, or every sender is
    /// dropped.
    ///
    /// # Errors
    /// [`RecvTimeoutError::Timeout`] when the wait expired,
    /// [`RecvTimeoutError::Disconnected`] when the channel is closed and
    /// empty.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn cloned_senders_share_the_channel() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn send_to_dropped_receiver_returns_the_value() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
        assert_eq!(tx.try_send(8), Err(TrySendError::Disconnected(8)));
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        let err = tx.try_send(3).unwrap_err();
        assert!(err.is_full());
        assert!(!err.is_disconnected());
        assert_eq!(err.into_inner(), 3);
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        drop(rx);
        assert!(tx.try_send(4).unwrap_err().is_disconnected());
    }

    #[test]
    fn bounded_send_blocks_until_capacity_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = std::thread::spawn(move || {
            // Blocks until the main thread drains the slot.
            tx.send(2).unwrap();
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        handle.join().unwrap();
    }

    #[test]
    fn recv_timeout_times_out_and_receives() {
        let (tx, rx) = bounded(4);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let (tx, rx) = bounded(0);
        tx.try_send(1).unwrap();
        assert!(tx.try_send(2).unwrap_err().is_full());
        assert_eq!(rx.recv(), Ok(1));
    }
}
