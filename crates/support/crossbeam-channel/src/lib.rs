//! Offline, API-compatible subset of the `crossbeam-channel` crate.
//!
//! Provides the unbounded MPSC channel surface used by `tcache-net`'s live
//! transport, implemented over `std::sync::mpsc`. (The real crate also
//! offers MPMC receivers and `select!`; nothing in this workspace needs
//! them.)

use std::fmt;
use std::sync::mpsc;

/// Error returned by [`Sender::send`] when the receiver has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on a disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// All senders have been dropped and the channel is drained.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "channel empty"),
            TryRecvError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// The sending half of an unbounded channel. Cloneable.
#[derive(Debug, Clone)]
pub struct Sender<T> {
    tx: mpsc::Sender<T>,
}

/// The receiving half of an unbounded channel.
#[derive(Debug)]
pub struct Receiver<T> {
    rx: mpsc::Receiver<T>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { tx }, Receiver { rx })
}

impl<T> Sender<T> {
    /// Sends `value`, failing only if the receiver has been dropped.
    ///
    /// # Errors
    /// Returns [`SendError`] carrying the value back when disconnected.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.tx.send(value).map_err(|mpsc::SendError(v)| SendError(v))
    }
}

impl<T> Receiver<T> {
    /// Receives a value without blocking.
    ///
    /// # Errors
    /// [`TryRecvError::Empty`] when no message is queued,
    /// [`TryRecvError::Disconnected`] when the channel is closed and empty.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.rx.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Blocks until a value arrives or every sender is dropped.
    ///
    /// # Errors
    /// Returns [`RecvError`] when the channel is closed and empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.rx.recv().map_err(|_| RecvError)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn cloned_senders_share_the_channel() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn send_to_dropped_receiver_returns_the_value() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }
}
