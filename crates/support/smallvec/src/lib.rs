//! Offline shim of the `smallvec` crate (API-compatible subset).
//!
//! [`SmallVec<[T; N]>`](SmallVec) is a vector that stores up to `N` elements
//! inline (on the stack, or wherever the `SmallVec` itself lives) and only
//! touches the heap once the length exceeds `N` ("spilling"). For hot paths
//! that are short in the common case — read sets of a few keys, small
//! version maps — this turns per-transaction `Vec` allocations into plain
//! stack writes.
//!
//! Supported surface (the subset the workspace uses):
//! `new`, `with_capacity`, `push`, `pop`, `clear`, `truncate`, `len`,
//! `is_empty`, `capacity`, `spilled`, `as_slice`, `as_mut_slice`,
//! `into_vec`, `from_slice`, `Deref`/`DerefMut` to `[T]`, `Extend`,
//! `FromIterator`, owned/borrowed `IntoIterator`, `Clone`, `Debug`,
//! `Default`, `PartialEq`/`Eq`, `Hash`, and the [`smallvec!`] macro.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::iter::FromIterator;
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut};
use std::ptr;

/// Types usable as the inline backing store of a [`SmallVec`].
///
/// Implemented for arrays `[T; N]`; the array itself is never materialized,
/// it only carries the element type and inline capacity.
pub trait Array {
    /// The element type.
    type Item;
    /// The inline capacity.
    const CAPACITY: usize;
}

impl<T, const N: usize> Array for [T; N] {
    type Item = T;
    const CAPACITY: usize = N;
}

enum Data<A: Array> {
    /// Inline storage; the first `SmallVec::len` slots are initialized.
    Inline(MaybeUninit<A>),
    /// Spilled to the heap; `SmallVec::len` is kept in sync with `Vec::len`.
    Heap(Vec<A::Item>),
}

/// A vector with inline storage for up to `A::CAPACITY` elements.
pub struct SmallVec<A: Array> {
    len: usize,
    data: Data<A>,
}

impl<A: Array> SmallVec<A> {
    /// Creates an empty vector using inline storage.
    #[inline]
    pub fn new() -> Self {
        SmallVec {
            len: 0,
            data: Data::Inline(MaybeUninit::uninit()),
        }
    }

    /// Creates an empty vector that can hold `cap` elements without
    /// reallocating; stays inline when `cap` fits the inline buffer.
    pub fn with_capacity(cap: usize) -> Self {
        if cap <= A::CAPACITY {
            SmallVec::new()
        } else {
            SmallVec {
                len: 0,
                data: Data::Heap(Vec::with_capacity(cap)),
            }
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current capacity (inline capacity until spilled).
    pub fn capacity(&self) -> usize {
        match &self.data {
            Data::Inline(_) => A::CAPACITY,
            Data::Heap(v) => v.capacity(),
        }
    }

    /// `true` once the contents have moved to the heap.
    #[inline]
    pub fn spilled(&self) -> bool {
        matches!(self.data, Data::Heap(_))
    }

    #[inline]
    fn inline_ptr(&self) -> *const A::Item {
        match &self.data {
            Data::Inline(buf) => buf.as_ptr() as *const A::Item,
            Data::Heap(_) => unreachable!("inline_ptr on spilled SmallVec"),
        }
    }

    #[inline]
    fn inline_mut_ptr(&mut self) -> *mut A::Item {
        match &mut self.data {
            Data::Inline(buf) => buf.as_mut_ptr() as *mut A::Item,
            Data::Heap(_) => unreachable!("inline_mut_ptr on spilled SmallVec"),
        }
    }

    /// Moves the inline contents into a heap `Vec` with at least
    /// `extra` additional slots.
    fn spill(&mut self, extra: usize) {
        debug_assert!(!self.spilled());
        let mut vec = Vec::with_capacity((A::CAPACITY * 2).max(self.len + extra));
        // SAFETY: the first `self.len` inline slots are initialized; each is
        // read exactly once and ownership moves into `vec`. Setting
        // `self.data = Heap(vec)` afterwards replaces (without dropping —
        // MaybeUninit never drops) the now-logically-moved-out buffer.
        unsafe {
            let src = self.inline_ptr();
            for i in 0..self.len {
                vec.push(ptr::read(src.add(i)));
            }
        }
        self.data = Data::Heap(vec);
    }

    /// Appends an element, spilling to the heap when the inline buffer is
    /// full.
    #[inline]
    pub fn push(&mut self, item: A::Item) {
        if let Data::Heap(v) = &mut self.data {
            v.push(item);
            self.len = v.len();
            return;
        }
        if self.len == A::CAPACITY {
            self.spill(1);
            if let Data::Heap(v) = &mut self.data {
                v.push(item);
                self.len = v.len();
            }
            return;
        }
        // SAFETY: `self.len < A::CAPACITY`, so the slot is in bounds and
        // uninitialized.
        unsafe {
            ptr::write(self.inline_mut_ptr().add(self.len), item);
        }
        self.len += 1;
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self) -> Option<A::Item> {
        match &mut self.data {
            Data::Heap(v) => {
                let out = v.pop();
                self.len = v.len();
                out
            }
            Data::Inline(_) => {
                if self.len == 0 {
                    return None;
                }
                self.len -= 1;
                // SAFETY: slot `self.len` was initialized; after the read it
                // is treated as uninitialized again.
                Some(unsafe { ptr::read(self.inline_ptr().add(self.len)) })
            }
        }
    }

    /// Shortens the vector to `len` elements, dropping the rest. Keeps any
    /// heap capacity (so a spilled scratch buffer is reused across calls).
    pub fn truncate(&mut self, len: usize) {
        match &mut self.data {
            Data::Heap(v) => {
                v.truncate(len);
                self.len = v.len();
            }
            Data::Inline(_) => {
                if len >= self.len {
                    return;
                }
                let old_len = self.len;
                // Set len first so a panicking Drop cannot double-drop.
                self.len = len;
                // SAFETY: slots `len..old_len` are initialized and after
                // this call considered uninitialized.
                unsafe {
                    let base = self.inline_mut_ptr();
                    ptr::drop_in_place(ptr::slice_from_raw_parts_mut(
                        base.add(len),
                        old_len - len,
                    ));
                }
            }
        }
    }

    /// Removes all elements, keeping heap capacity if spilled.
    #[inline]
    pub fn clear(&mut self) {
        self.truncate(0);
    }

    /// Borrows the contents as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[A::Item] {
        match &self.data {
            Data::Heap(v) => v.as_slice(),
            Data::Inline(_) => {
                // SAFETY: the first `self.len` inline slots are initialized.
                unsafe { std::slice::from_raw_parts(self.inline_ptr(), self.len) }
            }
        }
    }

    /// Borrows the contents as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [A::Item] {
        match &mut self.data {
            Data::Heap(v) => v.as_mut_slice(),
            Data::Inline(buf) => {
                let ptr = buf.as_mut_ptr() as *mut A::Item;
                // SAFETY: the first `self.len` inline slots are initialized.
                unsafe { std::slice::from_raw_parts_mut(ptr, self.len) }
            }
        }
    }

    /// Converts into a plain `Vec`, allocating only if still inline.
    pub fn into_vec(mut self) -> Vec<A::Item> {
        match &mut self.data {
            Data::Heap(v) => {
                let out = std::mem::take(v);
                self.len = 0;
                out
            }
            Data::Inline(_) => {
                let mut out = Vec::with_capacity(self.len);
                // SAFETY: the initialized prefix is read out exactly once;
                // `self.len = 0` prevents Drop from touching the moved-out
                // slots.
                unsafe {
                    let src = self.inline_ptr();
                    for i in 0..self.len {
                        out.push(ptr::read(src.add(i)));
                    }
                }
                self.len = 0;
                out
            }
        }
    }
}

impl<A: Array> SmallVec<A>
where
    A::Item: Clone,
{
    /// Builds a vector by cloning a slice.
    pub fn from_slice(slice: &[A::Item]) -> Self {
        let mut out = SmallVec::with_capacity(slice.len());
        for item in slice {
            out.push(item.clone());
        }
        out
    }

    /// Clones and appends every element of `slice`.
    pub fn extend_from_slice(&mut self, slice: &[A::Item]) {
        for item in slice {
            self.push(item.clone());
        }
    }
}

impl<A: Array> Drop for SmallVec<A> {
    fn drop(&mut self) {
        if let Data::Inline(_) = self.data {
            let len = self.len;
            self.len = 0;
            // SAFETY: the first `len` inline slots are initialized and
            // dropped exactly once here.
            unsafe {
                let base = self.inline_mut_ptr();
                ptr::drop_in_place(ptr::slice_from_raw_parts_mut(base, len));
            }
        }
        // Heap variant: the inner Vec drops itself.
    }
}

impl<A: Array> Default for SmallVec<A> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<A: Array> Deref for SmallVec<A> {
    type Target = [A::Item];
    #[inline]
    fn deref(&self) -> &[A::Item] {
        self.as_slice()
    }
}

impl<A: Array> DerefMut for SmallVec<A> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [A::Item] {
        self.as_mut_slice()
    }
}

impl<A: Array> Clone for SmallVec<A>
where
    A::Item: Clone,
{
    fn clone(&self) -> Self {
        SmallVec::from_slice(self.as_slice())
    }
}

impl<A: Array> fmt::Debug for SmallVec<A>
where
    A::Item: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<A: Array> PartialEq for SmallVec<A>
where
    A::Item: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<A: Array> Eq for SmallVec<A> where A::Item: Eq {}

impl<A: Array> PartialEq<[A::Item]> for SmallVec<A>
where
    A::Item: PartialEq,
{
    fn eq(&self, other: &[A::Item]) -> bool {
        self.as_slice() == other
    }
}

impl<A: Array, const N: usize> PartialEq<[A::Item; N]> for SmallVec<A>
where
    A::Item: PartialEq,
{
    fn eq(&self, other: &[A::Item; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<A: Array> Hash for SmallVec<A>
where
    A::Item: Hash,
{
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl<A: Array> Extend<A::Item> for SmallVec<A> {
    fn extend<I: IntoIterator<Item = A::Item>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<A: Array> FromIterator<A::Item> for SmallVec<A> {
    fn from_iter<I: IntoIterator<Item = A::Item>>(iter: I) -> Self {
        let mut out = SmallVec::new();
        out.extend(iter);
        out
    }
}

impl<'a, A: Array> IntoIterator for &'a SmallVec<A> {
    type Item = &'a A::Item;
    type IntoIter = std::slice::Iter<'a, A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<'a, A: Array> IntoIterator for &'a mut SmallVec<A> {
    type Item = &'a mut A::Item;
    type IntoIter = std::slice::IterMut<'a, A::Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_mut_slice().iter_mut()
    }
}

/// Owned iterator over a [`SmallVec`].
pub struct IntoIter<A: Array> {
    inner: SmallVec<A>,
    next: usize,
}

impl<A: Array> Iterator for IntoIter<A> {
    type Item = A::Item;

    fn next(&mut self) -> Option<A::Item> {
        if self.next >= self.inner.len {
            return None;
        }
        let idx = self.next;
        self.next += 1;
        match &mut self.inner.data {
            Data::Heap(v) => {
                // SAFETY: `idx < v.len()`; the slot is read exactly once —
                // Drop below forgets the already-yielded prefix.
                Some(unsafe { ptr::read(v.as_ptr().add(idx)) })
            }
            Data::Inline(buf) => {
                let base = buf.as_ptr() as *const A::Item;
                // SAFETY: as above for the inline buffer.
                Some(unsafe { ptr::read(base.add(idx)) })
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.inner.len - self.next;
        (rest, Some(rest))
    }
}

impl<A: Array> ExactSizeIterator for IntoIter<A> {}

impl<A: Array> Drop for IntoIter<A> {
    fn drop(&mut self) {
        // Drop only the elements not yet yielded, then defuse the inner
        // SmallVec/Vec so nothing is dropped twice.
        let len = self.inner.len;
        let start = self.next.min(len);
        match &mut self.inner.data {
            Data::Heap(v) => unsafe {
                // SAFETY: slots `start..len` are still owned by the
                // iterator; `set_len(0)` stops the Vec from dropping any
                // slot itself.
                let base = v.as_mut_ptr();
                v.set_len(0);
                ptr::drop_in_place(ptr::slice_from_raw_parts_mut(
                    base.add(start),
                    len - start,
                ));
            },
            Data::Inline(buf) => unsafe {
                // SAFETY: as above; zeroing `inner.len` stops SmallVec::drop
                // from dropping any slot itself.
                let base = buf.as_mut_ptr() as *mut A::Item;
                self.inner.len = 0;
                ptr::drop_in_place(ptr::slice_from_raw_parts_mut(
                    base.add(start),
                    len - start,
                ));
            },
        }
        self.inner.len = 0;
    }
}

impl<A: Array> IntoIterator for SmallVec<A> {
    type Item = A::Item;
    type IntoIter = IntoIter<A>;
    fn into_iter(self) -> IntoIter<A> {
        IntoIter {
            inner: self,
            next: 0,
        }
    }
}

// SAFETY: a SmallVec owns its items exactly like a Vec does; auto traits
// follow the item type. (MaybeUninit already propagates Send/Sync from `A`,
// these impls just make the guarantee explicit.)
unsafe impl<A: Array> Send for SmallVec<A> where A::Item: Send {}
unsafe impl<A: Array> Sync for SmallVec<A> where A::Item: Sync {}

/// Constructs a [`SmallVec`] from a list of elements, like `vec!`.
#[macro_export]
macro_rules! smallvec {
    () => { $crate::SmallVec::new() };
    ($($x:expr),+ $(,)?) => {{
        let mut out = $crate::SmallVec::new();
        $(out.push($x);)+
        out
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    type SV = SmallVec<[u64; 4]>;

    #[test]
    fn starts_inline_and_empty() {
        let v = SV::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert!(!v.spilled());
        assert_eq!(v.capacity(), 4);
        assert_eq!(v.as_slice(), &[] as &[u64]);
    }

    #[test]
    fn push_within_inline_capacity() {
        let mut v = SV::new();
        for i in 0..4 {
            v.push(i);
        }
        assert_eq!(v.len(), 4);
        assert!(!v.spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn push_past_capacity_spills() {
        let mut v = SV::new();
        for i in 0..10 {
            v.push(i);
        }
        assert!(v.spilled());
        assert_eq!(v.len(), 10);
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn pop_inline_and_spilled() {
        let mut v = SV::new();
        v.push(1);
        v.push(2);
        assert_eq!(v.pop(), Some(2));
        assert_eq!(v.pop(), Some(1));
        assert_eq!(v.pop(), None);

        let mut big: SV = (0..8).collect();
        assert_eq!(big.pop(), Some(7));
        assert_eq!(big.len(), 7);
    }

    #[test]
    fn clear_keeps_heap_capacity() {
        let mut v: SV = (0..20).collect();
        assert!(v.spilled());
        let cap = v.capacity();
        v.clear();
        assert!(v.is_empty());
        assert!(v.spilled(), "clear must not shed the spilled buffer");
        assert_eq!(v.capacity(), cap);
    }

    #[test]
    fn truncate_inline() {
        let mut v: SV = (0..3).collect();
        v.truncate(1);
        assert_eq!(v.as_slice(), &[0]);
        v.truncate(5);
        assert_eq!(v.as_slice(), &[0]);
    }

    #[test]
    fn deref_and_index() {
        let v: SV = (0..3).collect();
        assert_eq!(v[1], 1);
        assert_eq!(v.iter().sum::<u64>(), 3);
        let slice: &[u64] = &v;
        assert_eq!(slice.len(), 3);
    }

    #[test]
    fn with_capacity_spills_eagerly_when_large() {
        let v = SV::with_capacity(16);
        assert!(v.spilled());
        assert!(v.capacity() >= 16);
        let w = SV::with_capacity(3);
        assert!(!w.spilled());
    }

    #[test]
    fn into_vec_round_trip() {
        let v: SV = (0..6).collect();
        let plain = v.into_vec();
        assert_eq!(plain, vec![0, 1, 2, 3, 4, 5]);
        let small: SV = (0..2).collect();
        assert_eq!(small.into_vec(), vec![0, 1]);
    }

    #[test]
    fn clone_eq_debug_hash() {
        let v: SV = (0..5).collect();
        let w = v.clone();
        assert_eq!(v, w);
        assert_eq!(format!("{v:?}"), "[0, 1, 2, 3, 4]");
        use std::collections::hash_map::DefaultHasher;
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        v.hash(&mut h1);
        w.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn smallvec_macro() {
        let v: SV = smallvec![7, 8, 9];
        assert_eq!(v.as_slice(), &[7, 8, 9]);
        let empty: SV = smallvec![];
        assert!(empty.is_empty());
    }

    #[test]
    fn owned_into_iter_inline_and_spilled() {
        let v: SV = (0..3).collect();
        assert_eq!(v.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        let big: SV = (0..9).collect();
        assert_eq!(big.into_iter().sum::<u64>(), 36);
    }

    /// Counts live instances to prove drop correctness.
    struct Counted<'a>(&'a AtomicUsize);
    impl<'a> Counted<'a> {
        fn new(c: &'a AtomicUsize) -> Self {
            c.fetch_add(1, Ordering::SeqCst);
            Counted(c)
        }
    }
    impl Clone for Counted<'_> {
        fn clone(&self) -> Self {
            Counted::new(self.0)
        }
    }
    impl Drop for Counted<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn drops_every_element_exactly_once() {
        let live = AtomicUsize::new(0);
        {
            let mut v: SmallVec<[Counted<'_>; 2]> = SmallVec::new();
            for _ in 0..5 {
                v.push(Counted::new(&live));
            }
            assert_eq!(live.load(Ordering::SeqCst), 5);
            v.truncate(3);
            assert_eq!(live.load(Ordering::SeqCst), 3);
        }
        assert_eq!(live.load(Ordering::SeqCst), 0);

        // Inline-only lifecycle.
        {
            let mut v: SmallVec<[Counted<'_>; 8]> = SmallVec::new();
            for _ in 0..4 {
                v.push(Counted::new(&live));
            }
            v.pop();
            assert_eq!(live.load(Ordering::SeqCst), 3);
        }
        assert_eq!(live.load(Ordering::SeqCst), 0);

        // Partially consumed owned iterator.
        {
            let mut v: SmallVec<[Counted<'_>; 2]> = SmallVec::new();
            for _ in 0..6 {
                v.push(Counted::new(&live));
            }
            let mut it = v.into_iter();
            let first = it.next();
            assert_eq!(live.load(Ordering::SeqCst), 6);
            drop(first);
            assert_eq!(live.load(Ordering::SeqCst), 5);
            drop(it);
        }
        assert_eq!(live.load(Ordering::SeqCst), 0);

        // Partially consumed inline iterator.
        {
            let mut v: SmallVec<[Counted<'_>; 8]> = SmallVec::new();
            for _ in 0..3 {
                v.push(Counted::new(&live));
            }
            let mut it = v.into_iter();
            drop(it.next());
            drop(it);
        }
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn extend_from_slice_and_from_slice() {
        let mut v = SV::from_slice(&[1, 2]);
        v.extend_from_slice(&[3, 4, 5]);
        assert_eq!(v.as_slice(), &[1, 2, 3, 4, 5]);
        assert!(v.spilled());
    }

    #[test]
    fn compare_against_arrays_and_slices() {
        let v: SV = smallvec![1, 2, 3];
        assert_eq!(v, [1, 2, 3]);
        assert_eq!(v, [1u64, 2, 3][..]);
    }
}
