//! Offline, API-compatible subset of the `serde_json` crate.
//!
//! Bridges the shimmed [`serde::Serialize`] / [`serde::Deserialize`] traits
//! to JSON text via [`serde::json::Json`].

pub use serde::json::{Json as Value, JsonError as Error};

/// Serializes `value` to a compact JSON string.
///
/// # Errors
/// Never fails for the value model used in this workspace; the `Result`
/// mirrors `serde_json`'s signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().emit())
}

/// Deserializes a value from JSON text.
///
/// # Errors
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let parsed = serde::json::Json::parse(text)?;
    T::from_json(&parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let s = to_string(&42u64).unwrap();
        assert_eq!(s, "42");
        let n: u64 = from_str(&s).unwrap();
        assert_eq!(n, 42);

        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u32> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn options_map_to_null() {
        assert_eq!(to_string(&None::<u64>).unwrap(), "null");
        assert_eq!(to_string(&Some(5u64)).unwrap(), "5");
        let none: Option<u64> = from_str("null").unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(from_str::<u64>("\"hi\"").is_err());
        assert!(from_str::<Vec<u64>>("7").is_err());
        assert!(from_str::<u64>("not json").is_err());
    }
}
