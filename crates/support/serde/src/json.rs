//! A small JSON value model with an emitter and a recursive-descent parser.
//!
//! This backs the shimmed `serde_json::to_string` / `from_str`; it supports
//! the full JSON grammar minus some escape exotica (`\uXXXX` surrogate
//! pairs are decoded best-effort).

use std::fmt;

/// A parsed or to-be-emitted JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (kept exact, unlike `f64`).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Json>),
    /// An object, with insertion-ordered keys.
    Map(Vec<(String, Json)>),
}

/// Error produced when parsing fails or a tree has an unexpected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    /// Creates a shape-mismatch error.
    pub fn shape(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Looks up a key of an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Emits the value as compact JSON text.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => emit_string(s, out),
            Json::Seq(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Json::Map(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    emit_string(k, out);
                    out.push(':');
                    v.emit_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    /// Returns a [`JsonError`] describing the first syntax problem found.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(JsonError::shape("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::shape(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::shape(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(JsonError::shape(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Seq(items));
                }
                _ => return Err(JsonError::shape("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Map(entries));
                }
                _ => return Err(JsonError::shape("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::shape("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| JsonError::shape("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError::shape("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::shape("invalid \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::shape("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar value.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| JsonError::shape("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::shape("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| JsonError::shape(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compound_values() {
        let value = Json::Map(vec![
            ("id".into(), Json::U64(42)),
            ("neg".into(), Json::I64(-7)),
            ("pi".into(), Json::F64(3.5)),
            ("ok".into(), Json::Bool(true)),
            ("name".into(), Json::Str("a \"quoted\"\nline".into())),
            (
                "items".into(),
                Json::Seq(vec![Json::Null, Json::U64(1), Json::Seq(vec![])]),
            ),
        ]);
        let text = value.emit();
        let back = Json::parse(&text).unwrap();
        assert_eq!(value, back);
        assert_eq!(back.get("id"), Some(&Json::U64(42)));
        assert!(back.get("missing").is_none());
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let parsed = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : \"x\\u0041\" } ").unwrap();
        assert_eq!(parsed.get("a"), Some(&Json::Seq(vec![Json::U64(1), Json::U64(2)])));
        assert_eq!(parsed.get("b"), Some(&Json::Str("xA".into())));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn large_u64_stays_exact() {
        let n = u64::MAX - 3;
        let text = Json::U64(n).emit();
        assert_eq!(Json::parse(&text).unwrap(), Json::U64(n));
    }
}
