//! Offline, API-compatible subset of the `serde` crate.
//!
//! The workspace cannot reach crates.io, so this shim provides just enough
//! of serde's surface for the T-Cache crates:
//!
//! * `#[derive(Serialize, Deserialize)]` — re-exported marker derives that
//!   expand to nothing (see `serde_derive`), keeping the annotations on the
//!   domain types legal without generating code;
//! * [`Serialize`] / [`Deserialize`] — simple value-model traits
//!   (`to_json` / `from_json` over [`json::Json`]) implemented manually for
//!   the types that are genuinely serialized (`ObjectId`,
//!   `DependencyList`, …) and for the primitives they are built from.
//!
//! `serde_json`'s `to_string` / `from_str` in this workspace bound on these
//! traits, so round-trip tests work exactly as with the real crates.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use json::{Json, JsonError};

/// Types that can render themselves into the shim's JSON value model.
pub trait Serialize {
    /// Converts the value into a JSON tree.
    fn to_json(&self) -> Json;
}

/// Types that can be rebuilt from the shim's JSON value model.
pub trait Deserialize: Sized {
    /// Rebuilds the value from a JSON tree.
    ///
    /// # Errors
    /// Returns a [`JsonError`] when the tree has the wrong shape.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_json(value: &Json) -> Result<Self, JsonError> {
                match value {
                    Json::U64(n) => <$t>::try_from(*n).map_err(|_| JsonError::shape("integer out of range")),
                    _ => Err(JsonError::shape("expected an unsigned integer")),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Bool(b) => Ok(*b),
            _ => Err(JsonError::shape("expected a boolean")),
        }
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::F64(x) => Ok(*x),
            Json::U64(n) => Ok(*n as f64),
            _ => Err(JsonError::shape("expected a number")),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Str(s) => Ok(s.clone()),
            _ => Err(JsonError::shape("expected a string")),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Seq(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Seq(items) => items.iter().map(T::from_json).collect(),
            _ => Err(JsonError::shape("expected an array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}
