//! Marker derives for the offline `serde` shim.
//!
//! The shimmed `serde::Serialize` / `serde::Deserialize` traits are only
//! required (and manually implemented) for the handful of types that are
//! actually serialized through `serde_json`. Everything else in the
//! workspace uses `#[derive(Serialize, Deserialize)]` purely as an
//! annotation, so these derives intentionally expand to nothing: the
//! attribute stays legal, no impl is generated, and manual impls never
//! conflict.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
