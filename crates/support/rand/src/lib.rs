//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal re-implementation of the `rand` surface the T-Cache crates use:
//! [`RngCore`], the [`Rng`] extension trait (`gen_range`, `gen_bool`),
//! [`SeedableRng`], [`rngs::StdRng`] and [`seq::SliceRandom`].
//!
//! [`rngs::StdRng`] is a xoshiro256** generator seeded through SplitMix64;
//! it is deterministic per seed (which the simulation harness relies on) and
//! statistically solid for the workloads and loss models in this repository.
//! It makes no cryptographic claims whatsoever.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible `RngCore` operations. The generators in this
/// workspace are infallible, so this is never actually produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: a source of raw random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore + '_> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample an empty range");
                if lo == hi {
                    return lo;
                }
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u64, u32, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience methods layered on top of [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods for slices (`shuffle`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..5);
            assert!(w < 5);
            let x = rng.gen_range(2u64..=4);
            assert!((2..=4).contains(&x));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_whole_span() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.2)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.01, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 100-element shuffle virtually never is the identity");
        assert!([1u8, 2, 3].choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0u64..10);
        assert!(v < 10);
    }
}
