//! Offline, API-compatible subset of the `rand_distr` crate.
//!
//! Only the pieces used by this workspace are provided: the
//! [`Distribution`] trait and the exponential distribution [`Exp`]
//! (inverse-transform sampling), which drives the Poisson arrival processes
//! and the exponential latency model.

use rand::{Rng, RngCore};

/// Types that can produce random samples of `T`.
pub trait Distribution<T> {
    /// Draws one sample using `rng` as the source of randomness.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned when constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpError {
    /// The rate parameter λ was not strictly positive and finite.
    LambdaTooSmall,
}

impl std::fmt::Display for ExpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exponential rate must be positive and finite")
    }
}

impl std::error::Error for ExpError {}

/// The exponential distribution `Exp(λ)` with mean `1/λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates an exponential distribution with rate `lambda`.
    ///
    /// # Errors
    /// Returns [`ExpError::LambdaTooSmall`] unless `lambda` is strictly
    /// positive and finite.
    pub fn new(lambda: f64) -> Result<Exp, ExpError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(ExpError::LambdaTooSmall)
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF; (1 - u) avoids ln(0).
        let u: f64 = rng.gen_range(0.0..1.0);
        -(1.0 - u).ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_matches_one_over_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        let exp = Exp::new(0.01).unwrap();
        let n = 100_000;
        let total: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum();
        let observed = total / n as f64;
        assert!((observed - 100.0).abs() < 2.0, "observed mean {observed}");
    }

    #[test]
    fn samples_are_nonnegative_and_finite() {
        let mut rng = StdRng::seed_from_u64(2);
        let exp = Exp::new(5.0).unwrap();
        for _ in 0..10_000 {
            let x = exp.sample(&mut rng);
            assert!(x >= 0.0 && x.is_finite());
        }
    }

    #[test]
    fn invalid_lambda_is_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Exp::new(f64::INFINITY).is_err());
        assert!(Exp::new(f64::NAN).is_err());
    }
}
