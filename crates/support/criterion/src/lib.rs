//! Offline, API-compatible subset of the `criterion` crate.
//!
//! Implements the benchmark-definition surface used by this workspace
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!`) with a simple
//! wall-clock measurement loop: warm up for the configured time, then run
//! timed batches for the measurement window and report the mean time per
//! iteration. There is no statistical analysis, outlier rejection or HTML
//! report — the numbers are honest means, which is all the repository's
//! perf-tracking needs.
//!
//! When invoked with `--test` (as `cargo test --benches` does) every
//! benchmark body runs exactly once so CI can smoke-test benches cheaply.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement configuration and registry entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement window per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Applies command-line arguments (`--test` for one-shot smoke runs, a
    /// bare string as a name filter). Called by `criterion_main!`.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" => {}
                "--profile-time" | "--save-baseline" | "--baseline" | "--load-baseline" => {
                    let _ = args.next();
                }
                other if !other.starts_with('-') => self.filter = Some(other.to_string()),
                _ => {}
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Defines a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&name.to_string(), &mut f);
        self
    }

    fn run_one<F>(&self, name: &str, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            warm_up: self.warm_up_time,
            measurement: self.measurement_time,
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test bench {name} ... ok (ran once)");
        } else {
            println!(
                "bench {name:<50} {:>14} /iter ({} iterations)",
                format_ns(bencher.mean_ns),
                bencher.iters
            );
        }
    }
}

/// A group of related benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Defines a benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// Defines a parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let mut g = |b: &mut Bencher| f(b, input);
        self.criterion.run_one(&full, &mut g);
        self
    }

    /// Finishes the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Builds an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Drives the measured closure.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    test_mode: bool,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measures `f`, storing the mean wall-clock time per call.
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        if self.test_mode {
            std::hint::black_box(f());
            self.iters = 1;
            return;
        }

        // Warm-up, also calibrating the batch size.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Aim for `sample_size` samples within the measurement window.
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)) as u64).max(1);

        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let deadline = Instant::now() + self.measurement;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
        self.iters = iters;
    }
}

/// Re-export so user code can `use criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(3u32), &3u32, |b, &x| {
            b.iter(|| {
                total += x as u64;
            })
        });
        group.bench_function("plain", |b| b.iter(|| ()));
        group.finish();
        assert!(total > 0);
        assert!(BenchmarkId::new("f", 7).0.contains("f/7"));
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
        assert!(format_ns(2e9).contains(" s"));
    }
}
