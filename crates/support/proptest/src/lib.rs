//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Supports the property-test surface used in this workspace: the
//! [`strategy::Strategy`] trait with ranges, tuples, [`strategy::Just`],
//! `prop_map` and [`collection::vec`]; the [`proptest!`], [`prop_assert!`]
//! and [`prop_oneof!`] macros; and [`test_runner::ProptestConfig`].
//!
//! Unlike the real crate this shim does not shrink failing inputs — a
//! failure reports the case number and message only — and input generation
//! is seeded deterministically per test name so failures are reproducible.

pub mod collection;
pub mod strategy;
pub mod test_runner;

#[doc(hidden)]
pub use rand as __rand;

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespace mirror of proptest's `prop::*` re-exports.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
///
/// (In real tests, put `#[test]` on each function inside the block.)
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = ($config:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                // FNV-1a over the test name: deterministic, distinct per test.
                let mut __seed: u64 = 0xcbf29ce484222325;
                for __b in stringify!($name).bytes() {
                    __seed = (__seed ^ __b as u64).wrapping_mul(0x100000001b3);
                }
                let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(__seed);
                let ($($arg,)+) = ($($strategy,)+);
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng);)+
                    let __inputs = format!(concat!($(stringify!($arg), " = {:?}; "),+), $(&$arg),+);
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!(
                            "proptest '{}' failed at case {}/{}: {}\ninputs: {}",
                            stringify!($name), __case + 1, __config.cases, __e, __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Chooses uniformly between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in 3u64..17, b in 0usize..5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b < 5);
        }

        #[test]
        fn vec_and_map_compose(
            items in prop::collection::vec((0u64..10, 0u64..10).prop_map(|(x, y)| x + y), 0..20),
        ) {
            prop_assert!(items.len() < 20);
            prop_assert!(items.iter().all(|&v| v < 19));
        }

        #[test]
        fn oneof_and_just(choice in prop_oneof![Just(1u64), Just(2), 5u64..7]) {
            prop_assert!(choice == 1 || choice == 2 || choice == 5 || choice == 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_honoured(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn generated_tests_run() {
        ranges_respect_bounds();
        vec_and_map_compose();
        oneof_and_just();
        config_is_honoured();
    }

    #[test]
    #[should_panic(expected = "proptest 'always_fails' failed")]
    fn failures_panic_with_context() {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
