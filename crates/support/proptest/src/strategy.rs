//! The [`Strategy`] trait and its combinators.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::Range;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value the strategy generates.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U: Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u64, u32, usize);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The combinator behind [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
    U: Debug,
{
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Boxes a strategy for storage in heterogeneous collections
/// (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

impl<V: Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        (**self).generate(rng)
    }
}

/// A uniform choice between several strategies with the same value type.
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V: Debug> Union<V> {
    /// Creates a union over the given options.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}
