//! Test-runner configuration and case-level errors.

use std::fmt;

/// Configuration of a `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases generated per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    /// Creates a configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed test case (produced by `prop_assert!`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}
