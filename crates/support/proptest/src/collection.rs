//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::Range;

/// Strategy producing vectors whose elements come from `element` and whose
/// length is drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Creates a strategy for vectors of `element` values with a length in
/// `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = if self.size.start >= self.size.end {
            self.size.start
        } else {
            rng.gen_range(self.size.clone())
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
