//! Concurrency stress tests for the striped [`EdgeCache`].
//!
//! The cache used to serialize everything behind one mutex; these tests pin
//! down that the striped-lock rewrite misses no violation under parallel
//! load. The scenario is the paper's canonical stale pair, replicated many
//! times: objects `2i`/`2i+1` are updated together, the invalidation for
//! the odd object is "lost", so the cache holds a fresh even object (after
//! re-fetch) and a stale odd one. Any transaction reading both **must**
//! abort — a commit would be a missed violation — and a sequential
//! single-threaded replay (the old single-lock behaviour) must reach the
//! same verdicts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tcache_cache::EdgeCache;
use tcache_db::{Database, DatabaseConfig, UpdateCommit};
use tcache_types::{CacheId, ObjectId, SimTime, Strategy, TxnId, Value};

const PAIRS: u64 = 64;
const THREADS: u64 = 8;
const TXNS_PER_THREAD: u64 = 500;

/// Builds a database + cache where every pair (2i, 2i+1) is a stale pair:
/// the even object's invalidation was delivered, the odd one's was lost.
/// Returns the commits so tests can replay invalidations.
fn build_stale_pairs(cache: &EdgeCache, db: &Arc<Database>) -> Vec<UpdateCommit> {
    let now = SimTime::ZERO;
    let mut commits = Vec::new();
    for i in 0..PAIRS {
        let (even, odd) = (ObjectId(2 * i), ObjectId(2 * i + 1));
        // Warm both objects at their initial versions.
        cache.read(now, TxnId(500_000 + i), even, false).unwrap();
        cache.read(now, TxnId(500_000 + i), odd, true).unwrap();
        // Update the pair; deliver only the even object's invalidation.
        let commit = db
            .execute_update(TxnId(600_000 + i), &vec![even.as_u64(), odd.as_u64()].into())
            .unwrap();
        for inv in commit.invalidations.iter() {
            if inv.object == even {
                cache.apply_invalidation(*inv);
            }
        }
        commits.push(commit);
    }
    commits
}

fn setup(strategy: Strategy) -> (Arc<Database>, Arc<EdgeCache>, Vec<UpdateCommit>) {
    let db = Arc::new(Database::new(DatabaseConfig::with_bound(5)));
    db.populate((0..2 * PAIRS).map(|i| (ObjectId(i), Value::new(0))));
    let cache = Arc::new(EdgeCache::tcache(CacheId(0), Arc::clone(&db), 5, strategy));
    let commits = build_stale_pairs(&cache, &db);
    (db, cache, commits)
}

/// The transaction mix one worker runs; returns (committed, aborted) counts
/// for the pair transactions only.
fn run_mix(
    cache: &EdgeCache,
    thread: u64,
    txns: u64,
    txn_ids: &AtomicU64,
    commits: &[UpdateCommit],
) -> (u64, u64) {
    let now = SimTime::from_secs(1);
    let mut committed = 0;
    let mut aborted = 0;
    for i in 0..txns {
        let txn = TxnId(txn_ids.fetch_add(1, Ordering::Relaxed));
        let pair = (thread * 31 + i) % PAIRS;
        let (even, odd) = (ObjectId(2 * pair), ObjectId(2 * pair + 1));
        match i % 4 {
            // Pair transactions in both orders: every one must detect the
            // stale odd object.
            0 => match cache.execute_transaction(now, txn, &[even, odd]).unwrap() {
                o if o.is_committed() => committed += 1,
                _ => aborted += 1,
            },
            1 => match cache.execute_transaction(now, txn, &[odd, even]).unwrap() {
                o if o.is_committed() => committed += 1,
                _ => aborted += 1,
            },
            // Single-object transactions always commit (nothing to compare
            // against) and keep the storage stripes busy.
            2 => {
                let outcome = cache.execute_transaction(now, txn, &[even]).unwrap();
                assert!(outcome.is_committed(), "single reads cannot violate");
            }
            // Replay invalidations concurrently: old news for the even
            // object, still-lost news for the odd one is NOT delivered, so
            // the stale pair stays stale.
            _ => {
                for inv in commits[pair as usize].invalidations.iter() {
                    if inv.object == even {
                        cache.apply_invalidation(*inv);
                    }
                }
            }
        }
    }
    (committed, aborted)
}

#[test]
fn concurrent_mix_misses_no_violation_vs_sequential_oracle() {
    // Concurrent run over the striped cache.
    let (_db, cache, commits) = setup(Strategy::Abort);
    let txn_ids = Arc::new(AtomicU64::new(1_000_000));
    let commits = Arc::new(commits);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let txn_ids = Arc::clone(&txn_ids);
            let commits = Arc::clone(&commits);
            std::thread::spawn(move || run_mix(&cache, t, TXNS_PER_THREAD, &txn_ids, &commits))
        })
        .collect();
    let mut concurrent_committed = 0;
    let mut concurrent_aborted = 0;
    for h in handles {
        let (c, a) = h.join().unwrap();
        concurrent_committed += c;
        concurrent_aborted += a;
    }

    // No missed violation: every pair transaction saw the stale odd object
    // and must have aborted.
    assert_eq!(
        concurrent_committed, 0,
        "a committed pair transaction means the striped cache missed a violation"
    );
    assert_eq!(concurrent_aborted, THREADS * TXNS_PER_THREAD / 2);
    assert_eq!(cache.open_transactions(), 0, "all records garbage-collected");

    // Sequential oracle: the same mix replayed single-threaded (the old
    // single-lock execution order is some interleaving; any sequential
    // order is a witness) reaches the same verdicts.
    let (_db2, oracle, oracle_commits) = setup(Strategy::Abort);
    let oracle_ids = AtomicU64::new(1_000_000);
    let mut oracle_committed = 0;
    let mut oracle_aborted = 0;
    for t in 0..THREADS {
        let (c, a) = run_mix(&oracle, t, TXNS_PER_THREAD, &oracle_ids, &oracle_commits);
        oracle_committed += c;
        oracle_aborted += a;
    }
    assert_eq!(oracle_committed, concurrent_committed);
    assert_eq!(oracle_aborted, concurrent_aborted);

    // Both caches counted every abort and the concurrent invalidation
    // replays never evicted the newer entries (idempotence under threads).
    assert_eq!(cache.stats().txns_aborted, oracle.stats().txns_aborted);
    assert_eq!(
        cache.stats().invalidations_applied,
        oracle.stats().invalidations_applied
    );
}

#[test]
fn concurrent_retry_repairs_current_read_violations() {
    // With RETRY, pair transactions ordered (fresh-even, stale-odd) are
    // repaired by a read-through and must commit with matching versions;
    // ordered (stale-odd, fresh-even) they abort. Run both shapes from many
    // threads at once.
    let (db, cache, _commits) = setup(Strategy::Retry);
    let txn_ids = Arc::new(AtomicU64::new(2_000_000));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let db = Arc::clone(&db);
            let txn_ids = Arc::clone(&txn_ids);
            std::thread::spawn(move || {
                let now = SimTime::from_secs(1);
                for i in 0..200u64 {
                    let pair = (t * 17 + i) % PAIRS;
                    let (even, odd) = (ObjectId(2 * pair), ObjectId(2 * pair + 1));
                    let txn = TxnId(txn_ids.fetch_add(1, Ordering::Relaxed));
                    let outcome = cache.execute_transaction(now, txn, &[even, odd]).unwrap();
                    if let Some(values) = outcome.values() {
                        // A committed repair must return a consistent pair:
                        // both versions current in the database.
                        let fresh_even = db.peek_entry(even).unwrap().version;
                        let fresh_odd = db.peek_entry(odd).unwrap().version;
                        assert_eq!(values[0].version, fresh_even);
                        assert_eq!(values[1].version, fresh_odd);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = cache.stats();
    assert!(stats.retries > 0, "the stale pairs must force read-throughs");
    assert_eq!(cache.open_transactions(), 0);
}

/// Miss-storm against the seqlock-backed database read path: every commit's
/// invalidations are applied synchronously from the writer threads (an
/// aggressive upcall wiring), so readers keep missing and re-fetching
/// through [`Database::read_entry`] while installs race them. Every
/// re-fetched entry must be a committed snapshot — its version can never
/// go backwards for the same reader — and the database must classify the
/// read traffic on the optimistic path without blocking.
#[test]
fn miss_storm_under_concurrent_updates_reads_coherent_snapshots() {
    const UPDATES: u64 = 2_000;
    const READERS: u64 = 4;
    let db = Arc::new(Database::new(DatabaseConfig::with_bound(3)));
    db.populate((0..2 * PAIRS).map(|i| (ObjectId(i), Value::new(0))));
    let cache = Arc::new(EdgeCache::tcache(
        CacheId(0),
        Arc::clone(&db),
        3,
        Strategy::Abort,
    ));
    // Synchronous upcall: commits evict/refresh cached entries from the
    // writer thread, concurrently with the readers' fetches.
    {
        let cache = Arc::clone(&cache);
        db.register_invalidation_upcall(
            CacheId(0),
            Box::new(move |batch| {
                for inv in batch.iter() {
                    cache.apply_invalidation(*inv);
                }
            }),
        );
    }

    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let cache = Arc::clone(&cache);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let now = SimTime::ZERO;
                let mut floors = vec![0u64; (2 * PAIRS) as usize];
                let mut txn = 3_000_000 + r * 1_000_000;
                let mut rounds = 0u64;
                while !done.load(Ordering::Relaxed) || rounds < 200 {
                    let obj = (rounds * 7 + r) % (2 * PAIRS);
                    txn += 1;
                    // Single-read transactions: no cross-object predicate,
                    // so nothing aborts — this isolates the fetch path.
                    let v = cache
                        .read(now, TxnId(txn), ObjectId(obj), true)
                        .expect("backend reachable");
                    assert!(
                        v.version.0 >= floors[obj as usize],
                        "reader {r} saw o{obj} go backwards"
                    );
                    floors[obj as usize] = v.version.0;
                    rounds += 1;
                }
            })
        })
        .collect();

    for i in 0..UPDATES {
        let pair = i % PAIRS;
        db.execute_update(
            TxnId(7_000_000 + i),
            &vec![2 * pair, 2 * pair + 1].into(),
        )
        .unwrap();
    }
    done.store(true, Ordering::Relaxed);
    for h in readers {
        h.join().expect("no reader saw an incoherent snapshot");
    }

    let stats = cache.stats();
    assert!(stats.misses > 0, "invalidations must have forced re-fetches");
    let db_stats = db.stats();
    assert!(db_stats.read_path.optimistic_hits > 0);
    assert_eq!(
        db_stats.read_path.locked_reads, 0,
        "the miss path must ride the optimistic read surface"
    );
}
