//! Differential coverage for the epoch-reclaimed cache read path.
//!
//! [`CacheReadPath::Epoch`] must be *observationally identical* to
//! [`CacheReadPath::Locked`] — same hits, same misses, same eviction
//! victims, same floor vetoes — because `EdgeCache` treats the two as
//! interchangeable. Three layers pin that down:
//!
//! 1. a property test driving random op sequences through both paths in
//!    lockstep and comparing every return value and every aggregate;
//! 2. an 8-thread stress test over one shared epoch storage whose
//!    per-thread (disjoint-key) op logs are replayed against a
//!    sequential locked oracle;
//! 3. a reclamation hammer: readers race a writer that continuously
//!    retires entries, asserting reads are never torn and versions never
//!    run backwards (which is what observing reclaimed or resurrected
//!    memory would look like).

use proptest::prelude::*;
use std::sync::Arc;
use tcache_cache::storage::{CacheReadPath, ShardedCacheStorage};
use tcache_types::{
    DependencyList, ObjectEntry, ObjectId, SimDuration, SimTime, TtlConfig, Value, Version,
};

/// An entry whose value encodes its version, so a torn read (value from
/// one write, version from another) is detectable.
fn obj(id: u64, version: u64) -> ObjectEntry {
    ObjectEntry::new(
        ObjectId(id),
        Value::new(version),
        Version(version),
        DependencyList::bounded(3),
    )
}

fn storage(path: CacheReadPath, capacity: Option<usize>, ttl: TtlConfig) -> ShardedCacheStorage {
    ShardedCacheStorage::with_read_path(4, capacity, ttl, path)
}

proptest! {
    /// Random op sequences (inserts, TTL-sensitive gets, invalidations,
    /// removes, clears) produce identical observable behaviour on both
    /// read paths, op by op: same return values, same evictions, same
    /// len/footprint after every step.
    #[test]
    fn random_ops_match_the_locked_oracle(
        ops in prop::collection::vec((0u32..8, 0u64..24, 1u64..8, 0u64..100), 1..200),
        capacity_choice in 0u32..3,
    ) {
        let capacity = match capacity_choice {
            0 => None,
            1 => Some(8),
            _ => Some(16),
        };
        let ttl = TtlConfig::Limited(SimDuration::from_secs(30));
        let locked = storage(CacheReadPath::Locked, capacity, ttl);
        let epoch = storage(CacheReadPath::Epoch, capacity, ttl);
        for &(op, id, version, now_secs) in &ops {
            let key = ObjectId(id);
            let now = SimTime::from_secs(now_secs);
            match op {
                0..=2 => prop_assert_eq!(
                    locked.insert(obj(id, version), now),
                    epoch.insert(obj(id, version), now),
                    "insert(o{}, v{}) diverged", id, version
                ),
                3..=4 => prop_assert_eq!(
                    locked.get(key, now),
                    epoch.get(key, now),
                    "get(o{}) at {}s diverged", id, now_secs
                ),
                5 => prop_assert_eq!(
                    locked.invalidate(key, Version(version)),
                    epoch.invalidate(key, Version(version)),
                    "invalidate(o{}, v{}) diverged", id, version
                ),
                6 => prop_assert_eq!(
                    locked.remove(key),
                    epoch.remove(key),
                    "remove(o{}) diverged", id
                ),
                _ => {
                    prop_assert_eq!(locked.contains(key), epoch.contains(key));
                    prop_assert_eq!(locked.cached_version(key), epoch.cached_version(key));
                    if version == 1 {
                        // Rare full clear (entries + admission floors).
                        locked.clear();
                        epoch.clear();
                    }
                }
            }
            prop_assert_eq!(locked.len(), epoch.len());
            prop_assert_eq!(locked.footprint_bytes(), epoch.footprint_bytes());
        }
        // Full final-state sweep over the key universe.
        for id in 0..24u64 {
            let key = ObjectId(id);
            prop_assert_eq!(locked.cached_version(key), epoch.cached_version(key));
            prop_assert_eq!(locked.contains(key), epoch.contains(key));
        }
    }
}

/// What one operation observed, for oracle comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Observed {
    Evicted(Option<ObjectId>),
    Version(Option<Version>),
    Flag(bool),
}

fn run_op(storage: &ShardedCacheStorage, op: u64, key: u64, version: u64) -> Observed {
    let id = ObjectId(key);
    match op {
        0..=2 => Observed::Evicted(storage.insert(obj(key, version), SimTime::ZERO)),
        3 | 4 => Observed::Version(storage.get(id, SimTime::ZERO).map(|e| e.version)),
        5 => Observed::Flag(storage.invalidate(id, Version(version))),
        6 => Observed::Flag(storage.remove(id)),
        _ => Observed::Version(storage.cached_version(id)),
    }
}

/// Eight threads hammer one shared epoch storage with deterministic
/// per-thread op scripts over *disjoint* key ranges (so each thread's
/// results are sequentially determined even under full concurrency),
/// then every thread's observation log is replayed against a fresh
/// sequential locked-path oracle. Any lost invalidation, resurrected
/// entry or broken CAS shows up as a log divergence.
#[test]
fn eight_thread_stress_matches_sequential_oracle() {
    const THREADS: u64 = 8;
    const OPS: u64 = 5_000;
    let shared = Arc::new(storage(CacheReadPath::Epoch, None, TtlConfig::Infinite));
    let barrier = Arc::new(std::sync::Barrier::new(THREADS as usize));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let shared = Arc::clone(&shared);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ (t + 1);
                let mut log = Vec::with_capacity(OPS as usize);
                for _ in 0..OPS {
                    // xorshift64: deterministic, seeded per thread.
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let key = t * 1_000 + state % 16; // Disjoint per thread.
                    let version = 1 + (state >> 8) % 64;
                    let op = (state >> 16) % 8;
                    log.push((op, key, version, run_op(&shared, op, key, version)));
                }
                log
            })
        })
        .collect();
    for handle in handles {
        let log = handle.join().unwrap();
        // Replay this thread's script sequentially on the locked oracle;
        // disjoint keys + unbounded capacity mean the other threads cannot
        // have influenced its observations.
        let oracle = storage(CacheReadPath::Locked, None, TtlConfig::Infinite);
        for (op, key, version, observed) in log {
            let expected = run_op(&oracle, op, key, version);
            assert_eq!(
                expected, observed,
                "op {op} on o{key} v{version} diverged from the sequential oracle"
            );
        }
    }
    let stats = shared.epoch_stats().expect("epoch path exposes stats");
    assert!(stats.reclaimed > 0, "the stress must exercise reclamation");
}

/// Readers race a writer that keeps replacing and invalidating a handful
/// of hot keys, so every read traverses pointers the writer is actively
/// retiring. Use-after-reclaim would surface as a torn entry (value not
/// matching version), a wrong key, or a version running backwards.
#[test]
fn readers_never_observe_reclaimed_or_resurrected_entries() {
    const KEYS: u64 = 4;
    const WRITES: u64 = 30_000;
    let shared = Arc::new(storage(CacheReadPath::Epoch, None, TtlConfig::Infinite));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_seen = [0u64; KEYS as usize];
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    for key in 0..KEYS {
                        if let Some(entry) = shared.get(ObjectId(key), SimTime::ZERO) {
                            assert_eq!(entry.id, ObjectId(key), "entry for the wrong key");
                            assert_eq!(
                                entry.value,
                                Value::new(entry.version.as_u64()),
                                "torn read: value does not match version"
                            );
                            let seen = entry.version.as_u64();
                            assert!(
                                seen >= last_seen[key as usize],
                                "version ran backwards: {seen} after {}",
                                last_seen[key as usize]
                            );
                            last_seen[key as usize] = seen;
                        }
                    }
                }
            })
        })
        .collect();
    for version in 1..=WRITES {
        let key = version % KEYS;
        shared.insert(obj(key, version), SimTime::ZERO);
        if version % 7 == 0 {
            // Forces an eviction-and-refetch cycle under the readers.
            shared.invalidate(ObjectId(key), Version(version + 1));
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for reader in readers {
        reader.join().unwrap();
    }
    let stats = shared.epoch_stats().expect("epoch path exposes stats");
    assert!(
        stats.reclaimed > 0,
        "writer must have retired and reclaimed entries under the readers"
    );
}
