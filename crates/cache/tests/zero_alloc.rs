//! Allocation regression test for the cached read fast path.
//!
//! A counting global allocator (per-thread counters, so the test harness's
//! other threads cannot interfere) pins the tentpole guarantee: once the
//! cache and the thread-local scratch are warm, a 3-read cache-hit
//! read-only transaction through [`EdgeCache::execute_read_only`] performs
//! **zero** heap allocations end to end. CI runs this suite in release
//! mode; the guarantee is structural (inline small-buffers, borrowed
//! entries, reused scratch), so it holds in debug builds too.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use tcache_cache::EdgeCache;
use tcache_db::{Database, DatabaseConfig};
use tcache_types::{CacheId, ObjectId, SimTime, Strategy, TxnId, Value};

/// Forwards to the system allocator, counting allocations per thread.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|count| count.set(count.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|count| count.set(count.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|count| count.set(count.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations_on_this_thread() -> u64 {
    ALLOCS.with(Cell::get)
}

#[test]
fn cached_three_read_txn_is_allocation_free() {
    let db = Arc::new(Database::new(DatabaseConfig::with_bound(4)));
    db.populate((0..16).map(|i| (ObjectId(i), Value::new(0))));
    let cache = EdgeCache::tcache(CacheId(0), Arc::clone(&db), 4, Strategy::Abort);
    let now = SimTime::ZERO;
    let keys = [ObjectId(1), ObjectId(2), ObjectId(3)];

    // Warm up: the first transactions miss (database fetch + insert) and
    // initialize the thread-local fast-path scratch.
    for t in 0..4u64 {
        let log = cache
            .execute_read_only(now, TxnId(100 + t), &keys)
            .expect("warmup transaction");
        assert!(log.committed);
    }

    let before = allocations_on_this_thread();
    for t in 0..64u64 {
        let log = cache
            .execute_read_only(now, TxnId(1000 + t), &keys)
            .expect("cached read-only transaction");
        assert!(log.committed);
        assert_eq!(log.observed.len(), 3);
    }
    let allocated = allocations_on_this_thread() - before;
    assert_eq!(
        allocated, 0,
        "cached 3-read fast path performed {allocated} heap allocations over 64 transactions"
    );
}

#[test]
fn promoted_multi_call_txns_still_work_under_the_counting_allocator() {
    // Sanity: the slow (promoted) path coexists with the fast path and
    // both classify reads identically; this multi-call transaction forces
    // a table record and is *allowed* to allocate.
    let db = Arc::new(Database::new(DatabaseConfig::with_bound(4)));
    db.populate((0..8).map(|i| (ObjectId(i), Value::new(0))));
    let cache = EdgeCache::tcache(CacheId(0), Arc::clone(&db), 4, Strategy::Abort);
    let now = SimTime::ZERO;

    let txn = TxnId(7);
    let v1 = cache.read(now, txn, ObjectId(1), false).expect("read 1");
    let v2 = cache.read(now, txn, ObjectId(2), true).expect("read 2");
    assert_eq!(v1.id, ObjectId(1));
    assert_eq!(v2.id, ObjectId(2));

    // After the promoted transaction finished, single-shot transactions
    // are fast-path eligible again.
    let log = cache
        .execute_read_only(now, TxnId(8), &[ObjectId(1), ObjectId(2)])
        .expect("single-shot transaction");
    assert!(log.committed);
    let stats = cache.stats();
    assert!(stats.fastpath_txns >= 1, "fast path served the single-shot txn");
    assert!(stats.promoted_txns >= 1, "multi-call txn was promoted");
}
