//! The violation predicates of §III-B.
//!
//! On a read of `key_curr` returning version `ver_curr` with dependency list
//! `depList_curr`, the cache checks the read against every previous read of
//! the same transaction:
//!
//! * **Equation 1** — a previously read object is *too old*: the current
//!   read's dependency information expects some object `k` at a version `v`,
//!   but the transaction already observed `k` at an older version `v' < v`.
//!   The violating (stale) object is `k`, and it was already returned to the
//!   client.
//!
//! * **Equation 2** — the *current* read is too old: a previous read's
//!   dependency information expects `key_curr` at a version newer than
//!   `ver_curr`. The violating object is `key_curr`, and it has not been
//!   returned yet, which is what makes the RETRY strategy possible.
//!
//! In both predicates the "expected versions" of a read are the union of
//! the `(key, version)` pair actually observed and the entries of its
//! dependency list, mirroring the paper's `readSet ∪ writeSet` notation
//! (read-only cache transactions have no write set).

use tcache_types::{DependencyList, ObjectId, ReadSet, Version};

/// Which predicate detected the violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Equation 1: an object read earlier in the transaction is stale.
    PreviousReadStale,
    /// Equation 2: the object being read right now is stale.
    CurrentReadStale,
}

/// A detected inconsistency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The stale object.
    pub violating_object: ObjectId,
    /// The version the transaction observed for the stale object.
    pub observed_version: Version,
    /// The (newer) version some dependency expected.
    pub expected_version: Version,
    /// Which predicate fired.
    pub kind: ViolationKind,
}

/// Checks the current read against the transaction's previous reads.
///
/// Returns the first violation found, preferring Equation 2 (current read
/// stale) over Equation 1 when both hold: a current-read violation can be
/// repaired locally by the RETRY strategy, whereas an Equation 1 violation
/// always requires an abort, so reporting Equation 2 first gives the
/// configured strategy the most room to act. `None` means the read is
/// consistent with everything observed so far (which is a necessary but not
/// sufficient condition for true consistency — dependency lists are bounded).
pub fn check_read(
    previous: &ReadSet,
    key_curr: ObjectId,
    ver_curr: Version,
    deps_curr: &DependencyList,
) -> Option<Violation> {
    // Equation 2: some previous read expects key_curr at a newer version
    // than the one we are about to return.
    let mut eq2: Option<Violation> = None;
    for prev in previous.iter() {
        // The previously observed pair itself…
        if prev.object == key_curr && prev.version > ver_curr {
            eq2 = pick_worse(eq2, Violation {
                violating_object: key_curr,
                observed_version: ver_curr,
                expected_version: prev.version,
                kind: ViolationKind::CurrentReadStale,
            });
        }
        // …and its dependency list.
        if let Some(expected) = prev.dependencies.version_of(key_curr) {
            if expected > ver_curr {
                eq2 = pick_worse(eq2, Violation {
                    violating_object: key_curr,
                    observed_version: ver_curr,
                    expected_version: expected,
                    kind: ViolationKind::CurrentReadStale,
                });
            }
        }
    }
    if eq2.is_some() {
        return eq2;
    }

    // Equation 1: the current read's expectations (its observed pair plus
    // its dependency list) show that a previously returned object is stale.
    let mut eq1: Option<Violation> = None;
    for prev in previous.iter() {
        let expected = if prev.object == key_curr {
            // Re-reading the same key: the current version itself is the
            // expectation (a newer current version makes the earlier read
            // stale).
            Some(ver_curr)
        } else {
            deps_curr.version_of(prev.object)
        };
        if let Some(expected) = expected {
            if expected > prev.version {
                eq1 = pick_worse(eq1, Violation {
                    violating_object: prev.object,
                    observed_version: prev.version,
                    expected_version: expected,
                    kind: ViolationKind::PreviousReadStale,
                });
            }
        }
    }
    eq1
}

/// Keeps the violation with the larger expectation gap, so diagnostics point
/// at the most clearly stale object. Shared with the incremental checker in
/// [`crate::txn_record`] so the two can never diverge on tie-breaking.
pub(crate) fn pick_worse(current: Option<Violation>, candidate: Violation) -> Option<Violation> {
    match current {
        None => Some(candidate),
        Some(existing) => {
            let existing_gap = existing.expected_version.as_u64() - existing.observed_version.as_u64();
            let candidate_gap = candidate.expected_version.as_u64() - candidate.observed_version.as_u64();
            if candidate_gap > existing_gap {
                Some(candidate)
            } else {
                Some(existing)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::ReadRecord;

    fn o(i: u64) -> ObjectId {
        ObjectId(i)
    }
    fn v(i: u64) -> Version {
        Version(i)
    }

    fn deps(pairs: &[(u64, u64)]) -> DependencyList {
        let mut d = DependencyList::unbounded();
        for &(k, ver) in pairs {
            d.record(o(k), v(ver));
        }
        d
    }

    #[allow(clippy::type_complexity)]
    fn read_set(records: &[(u64, u64, &[(u64, u64)])]) -> ReadSet {
        let mut rs = ReadSet::new();
        for &(k, ver, dep_pairs) in records {
            rs.push(ReadRecord::new(o(k), v(ver), deps(dep_pairs)));
        }
        rs
    }

    #[test]
    fn consistent_read_passes() {
        // Previously read o1@v5 (depends on o2@v3); now reading o2@v3.
        let prev = read_set(&[(1, 5, &[(2, 3)])]);
        assert!(check_read(&prev, o(2), v(3), &deps(&[(1, 5)])).is_none());
        // Newer than expected is also fine for Equation 2.
        assert!(check_read(&prev, o(2), v(9), &deps(&[])).is_none());
    }

    #[test]
    fn first_read_of_a_transaction_never_violates() {
        let prev = ReadSet::new();
        assert!(check_read(&prev, o(1), v(0), &deps(&[(2, 100)])).is_none());
    }

    #[test]
    fn equation_two_current_read_too_old() {
        // Previous read of o1@v5 expects o2 at version >= 4; the cached o2 is
        // still at version 2 (its invalidation was lost).
        let prev = read_set(&[(1, 5, &[(2, 4)])]);
        let violation = check_read(&prev, o(2), v(2), &deps(&[])).unwrap();
        assert_eq!(violation.kind, ViolationKind::CurrentReadStale);
        assert_eq!(violation.violating_object, o(2));
        assert_eq!(violation.observed_version, v(2));
        assert_eq!(violation.expected_version, v(4));
    }

    #[test]
    fn equation_one_previous_read_too_old() {
        // Previously read o2@v2; now reading o1@v5 whose dependency list
        // says o2 must be at version >= 4.
        let prev = read_set(&[(2, 2, &[])]);
        let violation = check_read(&prev, o(1), v(5), &deps(&[(2, 4)])).unwrap();
        assert_eq!(violation.kind, ViolationKind::PreviousReadStale);
        assert_eq!(violation.violating_object, o(2));
        assert_eq!(violation.observed_version, v(2));
        assert_eq!(violation.expected_version, v(4));
    }

    #[test]
    fn rereading_same_key_with_newer_version_flags_previous_read() {
        let prev = read_set(&[(1, 3, &[])]);
        let violation = check_read(&prev, o(1), v(7), &deps(&[])).unwrap();
        assert_eq!(violation.kind, ViolationKind::PreviousReadStale);
        assert_eq!(violation.violating_object, o(1));
    }

    #[test]
    fn rereading_same_key_with_older_version_flags_current_read() {
        let prev = read_set(&[(1, 7, &[])]);
        let violation = check_read(&prev, o(1), v(3), &deps(&[])).unwrap();
        assert_eq!(violation.kind, ViolationKind::CurrentReadStale);
        assert_eq!(violation.violating_object, o(1));
    }

    #[test]
    fn rereading_same_key_same_version_is_consistent() {
        let prev = read_set(&[(1, 7, &[])]);
        assert!(check_read(&prev, o(1), v(7), &deps(&[])).is_none());
    }

    #[test]
    fn equation_two_takes_precedence_over_equation_one() {
        // Both predicates fire: the previous read of o2 is older than the
        // current read's expectation, and the current read of o3 is older
        // than a previous read's expectation. Equation 2 must be reported so
        // RETRY can repair the current read.
        let prev = read_set(&[(2, 2, &[(3, 9)]), (1, 5, &[])]);
        let violation = check_read(&prev, o(3), v(1), &deps(&[(2, 8)])).unwrap();
        assert_eq!(violation.kind, ViolationKind::CurrentReadStale);
        assert_eq!(violation.violating_object, o(3));
    }

    #[test]
    fn worst_violation_is_reported() {
        // Two previous reads expect the current object at versions 4 and 9;
        // the larger gap (9) should be reported.
        let prev = read_set(&[(1, 5, &[(3, 4)]), (2, 6, &[(3, 9)])]);
        let violation = check_read(&prev, o(3), v(1), &deps(&[])).unwrap();
        assert_eq!(violation.expected_version, v(9));
    }

    #[test]
    fn empty_dependency_lists_detect_nothing_new() {
        // With bound-zero dependency lists (a consistency-unaware cache) no
        // cross-object violation can ever fire.
        let prev = read_set(&[(1, 5, &[]), (2, 2, &[])]);
        assert!(check_read(&prev, o(3), v(0), &deps(&[])).is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use tcache_types::ReadRecord;

    fn arb_deplist() -> impl Strategy<Value = DependencyList> {
        prop::collection::vec((0u64..10, 0u64..20), 0..5).prop_map(|pairs| {
            let mut d = DependencyList::bounded(5);
            for (k, v) in pairs {
                d.record(ObjectId(k), Version(v));
            }
            d
        })
    }

    fn arb_read_set() -> impl Strategy<Value = ReadSet> {
        prop::collection::vec((0u64..10, 0u64..20, arb_deplist()), 0..6).prop_map(|reads| {
            let mut rs = ReadSet::new();
            for (k, v, d) in reads {
                rs.push(ReadRecord::new(ObjectId(k), Version(v), d));
            }
            rs
        })
    }

    proptest! {
        /// The check never reports an expected version that is not strictly
        /// newer than the observed version.
        #[test]
        fn violations_always_have_a_positive_gap(
            prev in arb_read_set(),
            key in 0u64..10,
            ver in 0u64..20,
            deps in arb_deplist(),
        ) {
            if let Some(v) = check_read(&prev, ObjectId(key), Version(ver), &deps) {
                prop_assert!(v.expected_version > v.observed_version);
            }
        }

        /// A read with an empty previous record never violates.
        #[test]
        fn empty_record_never_violates(
            key in 0u64..10,
            ver in 0u64..20,
            deps in arb_deplist(),
        ) {
            prop_assert!(check_read(&ReadSet::new(), ObjectId(key), Version(ver), &deps).is_none());
        }

        /// Monotonicity: raising the version of the current read can never
        /// introduce an Equation 2 violation that was absent at a higher
        /// version.
        #[test]
        fn newer_current_version_never_creates_eq2(
            prev in arb_read_set(),
            key in 0u64..10,
            ver in 0u64..19,
            deps in arb_deplist(),
        ) {
            let low = check_read(&prev, ObjectId(key), Version(ver), &deps);
            let high = check_read(&prev, ObjectId(key), Version(ver + 1), &deps);
            if let Some(h) = high {
                if h.kind == ViolationKind::CurrentReadStale {
                    // If the higher version still violates Eq 2, the lower
                    // version must violate it too.
                    let low_is_eq2 =
                        low.map(|v| v.kind == ViolationKind::CurrentReadStale).unwrap_or(false);
                    prop_assert!(low_is_eq2);
                }
            }
        }
    }
}
