//! In-memory cache storage with optional capacity-based LRU eviction and
//! TTL expiry.
//!
//! The paper's prototype "does not address the issue of cache eviction when
//! running out of memory" — in the experiments everything fits. The storage
//! nonetheless supports a capacity bound with LRU eviction so the library is
//! usable outside the evaluation; the harness simply leaves the capacity
//! unlimited.

use crate::entry::CacheEntry;
use std::collections::HashMap;
use tcache_types::{ObjectEntry, ObjectId, SimTime, TtlConfig, Version};

/// The cache's object storage.
#[derive(Debug)]
pub struct CacheStorage {
    entries: HashMap<ObjectId, CacheEntry>,
    /// Most-recently-used order: the front is the LRU victim candidate.
    lru: Vec<ObjectId>,
    capacity: Option<usize>,
    ttl: TtlConfig,
}

impl CacheStorage {
    /// Creates storage with unlimited capacity and no TTL.
    pub fn unlimited() -> Self {
        CacheStorage::new(None, TtlConfig::Infinite)
    }

    /// Creates storage with an optional capacity bound and a TTL policy.
    pub fn new(capacity: Option<usize>, ttl: TtlConfig) -> Self {
        CacheStorage {
            entries: HashMap::new(),
            lru: Vec::new(),
            capacity,
            ttl,
        }
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The TTL policy in force.
    pub fn ttl(&self) -> TtlConfig {
        self.ttl
    }

    /// Looks up an object. Expired entries are removed and reported as
    /// misses. A hit refreshes the object's LRU position.
    pub fn get(&mut self, id: ObjectId, now: SimTime) -> Option<ObjectEntry> {
        let expired = match self.entries.get(&id) {
            None => return None,
            Some(e) => e.is_expired(self.ttl, now),
        };
        if expired {
            self.remove(id);
            return None;
        }
        self.touch(id);
        self.entries.get(&id).map(|e| e.entry.clone())
    }

    /// Looks up an object without refreshing LRU or applying TTL
    /// (diagnostics and tests).
    pub fn peek(&self, id: ObjectId) -> Option<&CacheEntry> {
        self.entries.get(&id)
    }

    /// Inserts (or refreshes) an object, evicting the LRU entry if the
    /// capacity bound is exceeded. Returns the evicted object, if any.
    pub fn insert(&mut self, entry: ObjectEntry, now: SimTime) -> Option<ObjectId> {
        let id = entry.id;
        self.entries.insert(id, CacheEntry::new(entry, now));
        self.touch(id);
        if let Some(cap) = self.capacity {
            if self.entries.len() > cap {
                let victim = self.lru.first().copied();
                if let Some(v) = victim {
                    self.remove(v);
                    return Some(v);
                }
            }
        }
        None
    }

    /// Removes an object from the cache (invalidation or strategy-driven
    /// eviction). Returns `true` if it was present.
    pub fn remove(&mut self, id: ObjectId) -> bool {
        self.lru.retain(|&o| o != id);
        self.entries.remove(&id).is_some()
    }

    /// Removes the object only if its cached version is older than
    /// `newer_than`. Returns `true` if an entry was removed.
    ///
    /// This is the invalidation path: an invalidation for version `v` must
    /// not evict a cache entry that is already at `v` or newer (which can
    /// happen when invalidations are reordered).
    pub fn invalidate(&mut self, id: ObjectId, newer_than: Version) -> bool {
        match self.entries.get(&id) {
            Some(e) if e.entry.version < newer_than => self.remove(id),
            _ => false,
        }
    }

    /// The version currently cached for `id`, ignoring TTL.
    pub fn cached_version(&self, id: ObjectId) -> Option<Version> {
        self.entries.get(&id).map(|e| e.entry.version)
    }

    /// All cached object ids (unspecified order).
    pub fn object_ids(&self) -> Vec<ObjectId> {
        self.entries.keys().copied().collect()
    }

    /// Approximate memory footprint in bytes of the cached entries.
    pub fn footprint_bytes(&self) -> usize {
        self.entries.values().map(|e| e.entry.size_bytes()).sum()
    }

    fn touch(&mut self, id: ObjectId) {
        self.lru.retain(|&o| o != id);
        self.lru.push(id);
    }
}

impl Default for CacheStorage {
    fn default() -> Self {
        CacheStorage::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::{SimDuration, Value};

    fn obj(i: u64, v: u64) -> ObjectEntry {
        ObjectEntry::new(
            ObjectId(i),
            Value::new(v),
            Version(v),
            tcache_types::DependencyList::bounded(3),
        )
    }

    #[test]
    fn insert_get_remove() {
        let mut s = CacheStorage::unlimited();
        assert!(s.is_empty());
        s.insert(obj(1, 1), SimTime::ZERO);
        assert_eq!(s.len(), 1);
        let got = s.get(ObjectId(1), SimTime::ZERO).unwrap();
        assert_eq!(got.version, Version(1));
        assert!(s.remove(ObjectId(1)));
        assert!(!s.remove(ObjectId(1)));
        assert!(s.get(ObjectId(1), SimTime::ZERO).is_none());
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut s = CacheStorage::new(Some(2), TtlConfig::Infinite);
        s.insert(obj(1, 1), SimTime::ZERO);
        s.insert(obj(2, 1), SimTime::ZERO);
        // Touch object 1 so object 2 becomes the LRU victim.
        s.get(ObjectId(1), SimTime::ZERO);
        let evicted = s.insert(obj(3, 1), SimTime::ZERO);
        assert_eq!(evicted, Some(ObjectId(2)));
        assert!(s.peek(ObjectId(1)).is_some());
        assert!(s.peek(ObjectId(2)).is_none());
        assert!(s.peek(ObjectId(3)).is_some());
    }

    #[test]
    fn ttl_expiry_is_a_miss_and_removes_the_entry() {
        let ttl = TtlConfig::Limited(SimDuration::from_secs(10));
        let mut s = CacheStorage::new(None, ttl);
        assert_eq!(s.ttl(), ttl);
        s.insert(obj(1, 1), SimTime::ZERO);
        assert!(s.get(ObjectId(1), SimTime::from_secs(5)).is_some());
        assert!(s.get(ObjectId(1), SimTime::from_secs(11)).is_none());
        assert!(s.peek(ObjectId(1)).is_none(), "expired entry is dropped");
    }

    #[test]
    fn invalidate_only_removes_older_versions() {
        let mut s = CacheStorage::unlimited();
        s.insert(obj(1, 5), SimTime::ZERO);
        // An old (reordered) invalidation must not evict a newer entry.
        assert!(!s.invalidate(ObjectId(1), Version(5)));
        assert!(!s.invalidate(ObjectId(1), Version(3)));
        assert!(s.peek(ObjectId(1)).is_some());
        // A strictly newer version evicts.
        assert!(s.invalidate(ObjectId(1), Version(6)));
        assert!(s.peek(ObjectId(1)).is_none());
        // Invalidating an absent object is a no-op.
        assert!(!s.invalidate(ObjectId(9), Version(1)));
    }

    #[test]
    fn cached_version_and_ids() {
        let mut s = CacheStorage::unlimited();
        s.insert(obj(1, 4), SimTime::ZERO);
        s.insert(obj(2, 7), SimTime::ZERO);
        assert_eq!(s.cached_version(ObjectId(1)), Some(Version(4)));
        assert_eq!(s.cached_version(ObjectId(9)), None);
        let mut ids = s.object_ids();
        ids.sort();
        assert_eq!(ids, vec![ObjectId(1), ObjectId(2)]);
        assert!(s.footprint_bytes() > 0);
    }

    #[test]
    fn reinsert_refreshes_value_and_timestamp() {
        let ttl = TtlConfig::Limited(SimDuration::from_secs(10));
        let mut s = CacheStorage::new(None, ttl);
        s.insert(obj(1, 1), SimTime::ZERO);
        s.insert(obj(1, 2), SimTime::from_secs(8));
        // Entry re-inserted at t=8s survives until t=18s.
        let e = s.get(ObjectId(1), SimTime::from_secs(15)).unwrap();
        assert_eq!(e.version, Version(2));
        assert_eq!(s.len(), 1);
    }
}
