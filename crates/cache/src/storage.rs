//! In-memory cache storage with optional capacity-based LRU eviction and
//! TTL expiry.
//!
//! The paper's prototype "does not address the issue of cache eviction when
//! running out of memory" — in the experiments everything fits. The storage
//! nonetheless supports a capacity bound with LRU eviction so the library is
//! usable outside the evaluation; the harness simply leaves the capacity
//! unlimited.
//!
//! Two layers live here:
//!
//! * [`CacheStorage`] — a single-threaded store whose recency order is an
//!   intrusive doubly-linked list over slab indices, so `get` (touch),
//!   `insert` and `remove` are all O(1) — the previous `Vec<ObjectId>`
//!   recency order made every hit O(n);
//! * [`ShardedCacheStorage`] — N independently locked [`CacheStorage`]
//!   stripes, keyed by `ObjectId` hash, so cache hits on different objects
//!   proceed in parallel. This is the structure [`crate::EdgeCache`] uses.

use crate::entry::CacheEntry;
use crate::stripe::Striped;
use std::collections::HashMap;
use tcache_types::{ObjectEntry, ObjectId, SimTime, TtlConfig, Version};

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct LruNode {
    id: ObjectId,
    prev: usize,
    next: usize,
}

/// An intrusive doubly-linked recency list over a slab. The front is the
/// least recently used entry; every operation is O(1).
#[derive(Debug, Default)]
struct LruQueue {
    nodes: Vec<LruNode>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl LruQueue {
    fn new() -> Self {
        LruQueue {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Appends `id` as the most recently used entry, returning its slot.
    fn push_back(&mut self, id: ObjectId) -> usize {
        let node = LruNode {
            id,
            prev: self.tail,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        if self.tail != NIL {
            self.nodes[self.tail].next = slot;
        } else {
            self.head = slot;
        }
        self.tail = slot;
        slot
    }

    /// Unlinks `slot` and recycles it.
    fn remove(&mut self, slot: usize) {
        let LruNode { prev, next, .. } = self.nodes[slot];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.free.push(slot);
    }

    /// Moves `slot` to the most recently used position.
    fn touch(&mut self, slot: usize) {
        if self.tail == slot {
            return;
        }
        let id = self.nodes[slot].id;
        self.remove(slot);
        let new_slot = self.push_back(id);
        debug_assert_eq!(new_slot, slot, "recycled slot keeps its index");
    }

    /// The least recently used entry, if any.
    fn front(&self) -> Option<ObjectId> {
        if self.head == NIL {
            None
        } else {
            Some(self.nodes[self.head].id)
        }
    }
}

#[derive(Debug)]
struct Stored {
    entry: CacheEntry,
    slot: usize,
}

/// One stripe of the cache's object storage (single-threaded; wrap it in
/// [`ShardedCacheStorage`] for concurrent use).
#[derive(Debug)]
pub struct CacheStorage {
    entries: HashMap<ObjectId, Stored>,
    lru: LruQueue,
    capacity: Option<usize>,
    ttl: TtlConfig,
    /// Incrementally maintained sum of entry sizes, so footprint queries do
    /// not walk the map.
    footprint: usize,
    /// Per-object minimum admissible version, raised by every invalidation
    /// (present or not). This is what keeps the *striped* cache correct: an
    /// invalidation that arrives while the object is uncached must still
    /// veto a racing fetcher's about-to-land stale insert — the old
    /// global-mutex cache serialized fetch+insert+invalidation, the striped
    /// one records the knowledge instead. One `(ObjectId, Version)` pair
    /// per invalidated object; bounded by the object universe.
    floors: HashMap<ObjectId, Version>,
}

impl CacheStorage {
    /// Creates storage with unlimited capacity and no TTL.
    pub fn unlimited() -> Self {
        CacheStorage::new(None, TtlConfig::Infinite)
    }

    /// Creates storage with an optional capacity bound and a TTL policy.
    pub fn new(capacity: Option<usize>, ttl: TtlConfig) -> Self {
        CacheStorage {
            entries: HashMap::new(),
            lru: LruQueue::new(),
            capacity,
            ttl,
            footprint: 0,
            floors: HashMap::new(),
        }
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The TTL policy in force.
    pub fn ttl(&self) -> TtlConfig {
        self.ttl
    }

    /// Looks up an object. Expired entries are removed and reported as
    /// misses. A hit refreshes the object's LRU position. The returned
    /// entry shares its value blob and dependency list with the stored one
    /// (refcount bumps, no deep copy).
    pub fn get(&mut self, id: ObjectId, now: SimTime) -> Option<ObjectEntry> {
        let expired = match self.entries.get(&id) {
            None => return None,
            Some(s) => s.entry.is_expired(self.ttl, now),
        };
        if expired {
            self.remove(id);
            return None;
        }
        let stored = self.entries.get(&id).expect("checked above");
        self.lru.touch(stored.slot);
        Some(stored.entry.entry.clone())
    }

    /// Looks up an object without refreshing LRU or applying TTL
    /// (diagnostics and tests).
    pub fn peek(&self, id: ObjectId) -> Option<&CacheEntry> {
        self.entries.get(&id).map(|s| &s.entry)
    }

    /// Inserts (or refreshes) an object, evicting the LRU entry if the
    /// capacity bound is exceeded. Returns the evicted object, if any.
    ///
    /// An insert carrying an **older** version than the cached entry — or
    /// than the invalidation floor recorded for the object — is ignored.
    /// This is what makes the striped cache's miss path safe under
    /// concurrency: a thread that read version `v` from the backend may
    /// race with an invalidation for `v+1` (applied while the object was
    /// cached *or not*) and with a re-fetch of `v+1` by another thread;
    /// without the guard its late insert would (re)install the stale entry
    /// after the invalidation has already passed, poisoning the cache
    /// permanently under an infinite TTL. (The single-lock cache this
    /// replaced serialized fetch+insert+invalidation, so the case could not
    /// arise.) Equal versions refresh the entry and its TTL timestamp.
    pub fn insert(&mut self, entry: ObjectEntry, now: SimTime) -> Option<ObjectId> {
        let id = entry.id;
        if self.floors.get(&id).is_some_and(|&floor| entry.version < floor) {
            // An invalidation already superseded this version; admitting it
            // would resurrect data the database told us is stale.
            return None;
        }
        let size = entry.size_bytes();
        let cached = CacheEntry::new(entry, now);
        match self.entries.get_mut(&id) {
            Some(stored) if stored.entry.entry.version > cached.entry.version => {
                // Stale insert racing a newer entry: keep the newer one.
                return None;
            }
            Some(stored) => {
                self.footprint = self.footprint - stored.entry.entry.size_bytes() + size;
                stored.entry = cached;
                let slot = stored.slot;
                self.lru.touch(slot);
            }
            None => {
                let slot = self.lru.push_back(id);
                self.entries.insert(id, Stored { entry: cached, slot });
                self.footprint += size;
            }
        }
        if let Some(cap) = self.capacity {
            if self.entries.len() > cap {
                let victim = self.lru.front();
                if let Some(v) = victim {
                    self.remove(v);
                    return Some(v);
                }
            }
        }
        None
    }

    /// Removes an object from the cache (invalidation or strategy-driven
    /// eviction). Returns `true` if it was present.
    pub fn remove(&mut self, id: ObjectId) -> bool {
        match self.entries.remove(&id) {
            Some(stored) => {
                self.footprint -= stored.entry.entry.size_bytes();
                self.lru.remove(stored.slot);
                true
            }
            None => false,
        }
    }

    /// Removes the object only if its cached version is older than
    /// `newer_than`. Returns `true` if an entry was removed.
    ///
    /// This is the invalidation path: an invalidation for version `v` must
    /// not evict a cache entry that is already at `v` or newer (which can
    /// happen when invalidations are reordered). Whether or not the object
    /// is currently cached, the invalidation raises the object's admission
    /// floor so a concurrently in-flight fetch of an older version cannot
    /// be inserted after the fact (see [`CacheStorage::insert`]).
    pub fn invalidate(&mut self, id: ObjectId, newer_than: Version) -> bool {
        let floor = self.floors.entry(id).or_insert(newer_than);
        *floor = (*floor).max(newer_than);
        match self.entries.get(&id) {
            Some(s) if s.entry.entry.version < newer_than => self.remove(id),
            _ => false,
        }
    }

    /// Drops every cached entry and every recorded admission floor — a
    /// cache crash (the store is lost) or a snapshot resync (everything
    /// held is suspect). Dropping the floors is safe because both events
    /// leave the store empty: every subsequent read misses to the backend
    /// and fetches a current version, at or above any floor ever recorded.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.lru = LruQueue::new();
        self.footprint = 0;
        self.floors.clear();
    }

    /// The version currently cached for `id`, ignoring TTL.
    pub fn cached_version(&self, id: ObjectId) -> Option<Version> {
        self.entries.get(&id).map(|s| s.entry.entry.version)
    }

    /// All cached object ids (unspecified order).
    pub fn object_ids(&self) -> Vec<ObjectId> {
        self.entries.keys().copied().collect()
    }

    /// Approximate memory footprint in bytes of the cached entries (O(1):
    /// maintained incrementally).
    pub fn footprint_bytes(&self) -> usize {
        self.footprint
    }
}

impl Default for CacheStorage {
    fn default() -> Self {
        CacheStorage::unlimited()
    }
}

/// Number of stripes used by [`ShardedCacheStorage::with_default_stripes`];
/// a power of two so stripe selection is a mask.
pub const DEFAULT_STRIPES: usize = 16;

/// Concurrent cache storage: N independently locked [`CacheStorage`]
/// stripes keyed by object-id hash.
///
/// All methods take `&self`; each call locks exactly one stripe (aggregate
/// queries like [`ShardedCacheStorage::len`] lock each stripe in turn, never
/// two at once), so the structure is deadlock-free by construction and
/// reads of different objects contend only when they hash to the same
/// stripe.
#[derive(Debug)]
pub struct ShardedCacheStorage {
    stripes: Striped<CacheStorage>,
}

impl ShardedCacheStorage {
    /// Creates sharded storage with [`DEFAULT_STRIPES`] stripes.
    pub fn with_default_stripes(capacity: Option<usize>, ttl: TtlConfig) -> Self {
        ShardedCacheStorage::new(DEFAULT_STRIPES, capacity, ttl)
    }

    /// Creates sharded storage with `stripes` stripes (rounded up to a
    /// power of two). A total `capacity` is split evenly across stripes
    /// (`ceil(capacity / stripes)`, at least 1, per stripe).
    ///
    /// Because eviction is local to a stripe, the capacity is enforced per
    /// stripe, not globally: the aggregate entry count can exceed
    /// `capacity` by up to one entry per stripe when the split does not
    /// divide evenly (worst case `capacity + stripes - 1`). Callers that
    /// need a byte- or entry-exact budget should size `capacity` with that
    /// slack in mind.
    ///
    /// # Panics
    /// Panics if `stripes` is zero.
    pub fn new(stripes: usize, capacity: Option<usize>, ttl: TtlConfig) -> Self {
        // Build the stripes first and derive the per-stripe capacity from
        // the *actual* stripe count, so the split can never drift from
        // Striped's rounding policy.
        let mut built = Striped::new(stripes, || CacheStorage::new(None, ttl));
        if let Some(capacity) = capacity {
            let per_stripe = capacity.div_ceil(built.len()).max(1);
            for stripe in built.iter_mut() {
                stripe.get_mut().capacity = Some(per_stripe);
            }
        }
        ShardedCacheStorage { stripes: built }
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    fn stripe(&self, id: ObjectId) -> &parking_lot::Mutex<CacheStorage> {
        self.stripes.stripe_for(id.as_u64())
    }

    /// Looks up an object (TTL-checked, LRU-touched); see
    /// [`CacheStorage::get`].
    pub fn get(&self, id: ObjectId, now: SimTime) -> Option<ObjectEntry> {
        self.stripe(id).lock().get(id, now)
    }

    /// Inserts (or refreshes) an object; see [`CacheStorage::insert`].
    pub fn insert(&self, entry: ObjectEntry, now: SimTime) -> Option<ObjectId> {
        self.stripe(entry.id).lock().insert(entry, now)
    }

    /// Removes an object, returning `true` if it was present.
    pub fn remove(&self, id: ObjectId) -> bool {
        self.stripe(id).lock().remove(id)
    }

    /// Applies an invalidation; see [`CacheStorage::invalidate`].
    pub fn invalidate(&self, id: ObjectId, newer_than: Version) -> bool {
        self.stripe(id).lock().invalidate(id, newer_than)
    }

    /// Clears every stripe (entries and admission floors); see
    /// [`CacheStorage::clear`]. Stripes are cleared one at a time, never
    /// holding two locks.
    pub fn clear(&self) {
        for stripe in self.stripes.iter() {
            stripe.lock().clear();
        }
    }

    /// Returns `true` if `id` is currently cached (ignoring TTL).
    pub fn contains(&self, id: ObjectId) -> bool {
        self.stripe(id).lock().peek(id).is_some()
    }

    /// The version currently cached for `id`, ignoring TTL.
    pub fn cached_version(&self, id: ObjectId) -> Option<Version> {
        self.stripe(id).lock().cached_version(id)
    }

    /// Total number of cached objects (sums the stripes; approximate under
    /// concurrent mutation).
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len()).sum()
    }

    /// Returns `true` if nothing is cached in any stripe.
    pub fn is_empty(&self) -> bool {
        self.stripes.iter().all(|s| s.lock().is_empty())
    }

    /// Approximate memory footprint of all cached entries, in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().footprint_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::{SimDuration, Value};

    fn obj(i: u64, v: u64) -> ObjectEntry {
        ObjectEntry::new(
            ObjectId(i),
            Value::new(v),
            Version(v),
            tcache_types::DependencyList::bounded(3),
        )
    }

    #[test]
    fn insert_get_remove() {
        let mut s = CacheStorage::unlimited();
        assert!(s.is_empty());
        s.insert(obj(1, 1), SimTime::ZERO);
        assert_eq!(s.len(), 1);
        let got = s.get(ObjectId(1), SimTime::ZERO).unwrap();
        assert_eq!(got.version, Version(1));
        assert!(s.remove(ObjectId(1)));
        assert!(!s.remove(ObjectId(1)));
        assert!(s.get(ObjectId(1), SimTime::ZERO).is_none());
    }

    #[test]
    fn clear_drops_entries_floors_and_footprint() {
        let mut s = CacheStorage::unlimited();
        s.insert(obj(1, 1), SimTime::ZERO);
        s.insert(obj(2, 1), SimTime::ZERO);
        s.invalidate(ObjectId(3), Version(5));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.footprint_bytes(), 0);
        // The floor for object 3 is gone: an old version is admissible
        // again (the post-clear store only ever sees fresh fetches, so
        // this cannot resurrect stale data in practice).
        s.insert(obj(3, 2), SimTime::ZERO);
        assert_eq!(s.cached_version(ObjectId(3)), Some(Version(2)));

        let sharded = ShardedCacheStorage::with_default_stripes(None, TtlConfig::Infinite);
        sharded.insert(obj(1, 1), SimTime::ZERO);
        sharded.insert(obj(20, 1), SimTime::ZERO);
        sharded.clear();
        assert!(sharded.is_empty());
        assert_eq!(sharded.footprint_bytes(), 0);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut s = CacheStorage::new(Some(2), TtlConfig::Infinite);
        s.insert(obj(1, 1), SimTime::ZERO);
        s.insert(obj(2, 1), SimTime::ZERO);
        // Touch object 1 so object 2 becomes the LRU victim.
        s.get(ObjectId(1), SimTime::ZERO);
        let evicted = s.insert(obj(3, 1), SimTime::ZERO);
        assert_eq!(evicted, Some(ObjectId(2)));
        assert!(s.peek(ObjectId(1)).is_some());
        assert!(s.peek(ObjectId(2)).is_none());
        assert!(s.peek(ObjectId(3)).is_some());
    }

    #[test]
    fn eviction_follows_full_recency_order() {
        let mut s = CacheStorage::new(Some(3), TtlConfig::Infinite);
        s.insert(obj(1, 1), SimTime::ZERO);
        s.insert(obj(2, 1), SimTime::ZERO);
        s.insert(obj(3, 1), SimTime::ZERO);
        // Recency now 1 < 2 < 3. Touch 1 → 2 < 3 < 1. Touch 3 → 2 < 1 < 3.
        s.get(ObjectId(1), SimTime::ZERO);
        s.get(ObjectId(3), SimTime::ZERO);
        assert_eq!(s.insert(obj(4, 1), SimTime::ZERO), Some(ObjectId(2)));
        assert_eq!(s.insert(obj(5, 1), SimTime::ZERO), Some(ObjectId(1)));
        assert_eq!(s.insert(obj(6, 1), SimTime::ZERO), Some(ObjectId(3)));
        // Re-inserting an existing object refreshes instead of growing.
        assert_eq!(s.insert(obj(4, 2), SimTime::ZERO), None);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn capacity_one_keeps_only_the_newest() {
        let mut s = CacheStorage::new(Some(1), TtlConfig::Infinite);
        assert_eq!(s.insert(obj(1, 1), SimTime::ZERO), None);
        assert_eq!(s.insert(obj(2, 1), SimTime::ZERO), Some(ObjectId(1)));
        assert_eq!(s.insert(obj(3, 1), SimTime::ZERO), Some(ObjectId(2)));
        assert_eq!(s.len(), 1);
        assert!(s.peek(ObjectId(3)).is_some());
        // Refreshing the only entry evicts nothing.
        assert_eq!(s.insert(obj(3, 2), SimTime::ZERO), None);
        assert_eq!(s.cached_version(ObjectId(3)), Some(Version(2)));
    }

    #[test]
    fn removing_and_reinserting_recycles_lru_slots() {
        let mut s = CacheStorage::new(Some(2), TtlConfig::Infinite);
        for round in 0..100u64 {
            s.insert(obj(round % 5, round), SimTime::ZERO);
            if round % 3 == 0 {
                s.remove(ObjectId(round % 5));
            }
            assert!(s.len() <= 2);
        }
        // The slab's free list keeps the queue compact: at most
        // capacity + 1 slots were ever needed simultaneously.
        assert!(s.lru.nodes.len() <= 3, "slots: {}", s.lru.nodes.len());
    }

    #[test]
    fn invalidation_while_uncached_vetoes_a_racing_stale_insert() {
        // The miss-path race: a fetcher read v1 from the backend, then an
        // invalidation for v2 arrives while nothing is cached (a no-op
        // eviction), then the fetcher's insert lands. The insert must be
        // rejected so the next read misses and fetches v2.
        let mut s = CacheStorage::unlimited();
        assert!(!s.invalidate(ObjectId(1), Version(2)), "nothing cached to evict");
        assert_eq!(s.insert(obj(1, 1), SimTime::ZERO), None);
        assert!(s.peek(ObjectId(1)).is_none(), "stale insert must be vetoed");
        // The current version (and anything newer) is admissible.
        s.insert(obj(1, 2), SimTime::ZERO);
        assert_eq!(s.cached_version(ObjectId(1)), Some(Version(2)));
        // Floors are monotone: a reordered older invalidation changes nothing.
        assert!(!s.invalidate(ObjectId(1), Version(1)));
        assert_eq!(s.cached_version(ObjectId(1)), Some(Version(2)));
    }

    #[test]
    fn stale_insert_never_buries_a_newer_entry() {
        let mut s = CacheStorage::unlimited();
        s.insert(obj(1, 5), SimTime::ZERO);
        // A racing thread's late insert of an older version is ignored…
        assert_eq!(s.insert(obj(1, 3), SimTime::from_secs(1)), None);
        assert_eq!(s.cached_version(ObjectId(1)), Some(Version(5)));
        // …an equal version refreshes (value + TTL timestamp)…
        s.insert(obj(1, 5), SimTime::from_secs(2));
        assert_eq!(s.peek(ObjectId(1)).unwrap().inserted_at, SimTime::from_secs(2));
        // …and a newer version replaces.
        s.insert(obj(1, 6), SimTime::from_secs(3));
        assert_eq!(s.cached_version(ObjectId(1)), Some(Version(6)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ttl_expiry_is_a_miss_and_removes_the_entry() {
        let ttl = TtlConfig::Limited(SimDuration::from_secs(10));
        let mut s = CacheStorage::new(None, ttl);
        assert_eq!(s.ttl(), ttl);
        s.insert(obj(1, 1), SimTime::ZERO);
        assert!(s.get(ObjectId(1), SimTime::from_secs(5)).is_some());
        assert!(s.get(ObjectId(1), SimTime::from_secs(11)).is_none());
        assert!(s.peek(ObjectId(1)).is_none(), "expired entry is dropped");
    }

    #[test]
    fn invalidate_only_removes_older_versions() {
        let mut s = CacheStorage::unlimited();
        s.insert(obj(1, 5), SimTime::ZERO);
        // An old (reordered) invalidation must not evict a newer entry.
        assert!(!s.invalidate(ObjectId(1), Version(5)));
        assert!(!s.invalidate(ObjectId(1), Version(3)));
        assert!(s.peek(ObjectId(1)).is_some());
        // A strictly newer version evicts.
        assert!(s.invalidate(ObjectId(1), Version(6)));
        assert!(s.peek(ObjectId(1)).is_none());
        // Invalidating an absent object is a no-op.
        assert!(!s.invalidate(ObjectId(9), Version(1)));
    }

    #[test]
    fn cached_version_and_ids() {
        let mut s = CacheStorage::unlimited();
        s.insert(obj(1, 4), SimTime::ZERO);
        s.insert(obj(2, 7), SimTime::ZERO);
        assert_eq!(s.cached_version(ObjectId(1)), Some(Version(4)));
        assert_eq!(s.cached_version(ObjectId(9)), None);
        let mut ids = s.object_ids();
        ids.sort();
        assert_eq!(ids, vec![ObjectId(1), ObjectId(2)]);
        assert!(s.footprint_bytes() > 0);
    }

    #[test]
    fn footprint_tracks_inserts_replacements_and_removals() {
        let mut s = CacheStorage::unlimited();
        assert_eq!(s.footprint_bytes(), 0);
        s.insert(obj(1, 1), SimTime::ZERO);
        let one = s.footprint_bytes();
        assert!(one > 0);
        s.insert(obj(2, 1), SimTime::ZERO);
        assert_eq!(s.footprint_bytes(), 2 * one);
        // Replacing an entry with a bigger payload adjusts, not adds.
        let big = ObjectEntry::new(
            ObjectId(1),
            Value::from_bytes(vec![0u8; 100]),
            Version(2),
            tcache_types::DependencyList::bounded(3),
        );
        let big_size = big.size_bytes();
        s.insert(big, SimTime::ZERO);
        assert_eq!(s.footprint_bytes(), one + big_size);
        s.remove(ObjectId(1));
        s.remove(ObjectId(2));
        assert_eq!(s.footprint_bytes(), 0);
    }

    #[test]
    fn reinsert_refreshes_value_and_timestamp() {
        let ttl = TtlConfig::Limited(SimDuration::from_secs(10));
        let mut s = CacheStorage::new(None, ttl);
        s.insert(obj(1, 1), SimTime::ZERO);
        s.insert(obj(1, 2), SimTime::from_secs(8));
        // Entry re-inserted at t=8s survives until t=18s.
        let e = s.get(ObjectId(1), SimTime::from_secs(15)).unwrap();
        assert_eq!(e.version, Version(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn sharded_storage_mirrors_single_stripe_semantics() {
        let s = ShardedCacheStorage::new(8, None, TtlConfig::Infinite);
        assert_eq!(s.stripe_count(), 8);
        assert!(s.is_empty());
        for i in 0..100 {
            s.insert(obj(i, i + 1), SimTime::ZERO);
        }
        assert_eq!(s.len(), 100);
        assert!(s.contains(ObjectId(42)));
        assert_eq!(s.cached_version(ObjectId(42)), Some(Version(43)));
        assert!(s.footprint_bytes() > 0);
        assert!(s.get(ObjectId(42), SimTime::ZERO).is_some());
        assert!(s.invalidate(ObjectId(42), Version(100)));
        assert!(!s.contains(ObjectId(42)));
        assert!(s.remove(ObjectId(41)));
        assert_eq!(s.len(), 98);
    }

    #[test]
    fn sharded_storage_is_safe_under_concurrent_mixed_load() {
        use std::sync::Arc;
        let s = Arc::new(ShardedCacheStorage::with_default_stripes(
            Some(64),
            TtlConfig::Infinite,
        ));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let id = (t * 31 + i) % 128;
                        match i % 4 {
                            0 => {
                                s.insert(obj(id, i + 1), SimTime::ZERO);
                            }
                            1 => {
                                s.get(ObjectId(id), SimTime::ZERO);
                            }
                            2 => {
                                s.invalidate(ObjectId(id), Version(i));
                            }
                            _ => {
                                s.remove(ObjectId(id));
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Capacity is enforced per stripe (64 split over 16 stripes = 4
        // each); with an even split the total cannot exceed the bound.
        assert!(s.len() <= 64);
    }

    #[test]
    #[should_panic(expected = "at least one stripe")]
    fn zero_stripes_panics() {
        let _ = ShardedCacheStorage::new(0, None, TtlConfig::Infinite);
    }
}
