//! In-memory cache storage with optional capacity-based LRU eviction and
//! TTL expiry.
//!
//! The paper's prototype "does not address the issue of cache eviction when
//! running out of memory" — in the experiments everything fits. The storage
//! nonetheless supports a capacity bound with LRU eviction so the library is
//! usable outside the evaluation; the harness simply leaves the capacity
//! unlimited.
//!
//! Two layers live here:
//!
//! * [`CacheStorage`] — a single-threaded store whose recency order is an
//!   intrusive doubly-linked list over slab indices, so `get` (touch),
//!   `insert` and `remove` are all O(1) — the previous `Vec<ObjectId>`
//!   recency order made every hit O(n);
//! * [`ShardedCacheStorage`] — N independently locked [`CacheStorage`]
//!   stripes, keyed by `ObjectId` hash, so cache hits on different objects
//!   proceed in parallel. This is the structure [`crate::EdgeCache`] uses.

use crate::entry::CacheEntry;
use crate::stripe::Striped;
use std::collections::HashMap;
use tcache_types::{ObjectEntry, ObjectId, SimTime, TtlConfig, Version};

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct LruNode {
    id: ObjectId,
    prev: usize,
    next: usize,
}

/// An intrusive doubly-linked recency list over a slab. The front is the
/// least recently used entry; every operation is O(1).
#[derive(Debug, Default)]
pub(crate) struct LruQueue {
    nodes: Vec<LruNode>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl LruQueue {
    pub(crate) fn new() -> Self {
        LruQueue {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Appends `id` as the most recently used entry, returning its slot.
    pub(crate) fn push_back(&mut self, id: ObjectId) -> usize {
        let node = LruNode {
            id,
            prev: self.tail,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        if self.tail != NIL {
            self.nodes[self.tail].next = slot;
        } else {
            self.head = slot;
        }
        self.tail = slot;
        slot
    }

    /// Unlinks `slot` and recycles it.
    pub(crate) fn remove(&mut self, slot: usize) {
        let LruNode { prev, next, .. } = self.nodes[slot];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.free.push(slot);
    }

    /// Moves `slot` to the most recently used position.
    pub(crate) fn touch(&mut self, slot: usize) {
        if self.tail == slot {
            return;
        }
        let id = self.nodes[slot].id;
        self.remove(slot);
        let new_slot = self.push_back(id);
        debug_assert_eq!(new_slot, slot, "recycled slot keeps its index");
    }

    /// The least recently used entry, if any.
    pub(crate) fn front(&self) -> Option<ObjectId> {
        if self.head == NIL {
            None
        } else {
            Some(self.nodes[self.head].id)
        }
    }
}

#[derive(Debug)]
struct Stored {
    entry: CacheEntry,
    slot: usize,
}

/// One stripe of the cache's object storage (single-threaded; wrap it in
/// [`ShardedCacheStorage`] for concurrent use).
#[derive(Debug)]
pub struct CacheStorage {
    entries: HashMap<ObjectId, Stored>,
    lru: LruQueue,
    capacity: Option<usize>,
    ttl: TtlConfig,
    /// Incrementally maintained sum of entry sizes, so footprint queries do
    /// not walk the map.
    footprint: usize,
    /// Per-object minimum admissible version, raised by every invalidation
    /// (present or not). This is what keeps the *striped* cache correct: an
    /// invalidation that arrives while the object is uncached must still
    /// veto a racing fetcher's about-to-land stale insert — the old
    /// global-mutex cache serialized fetch+insert+invalidation, the striped
    /// one records the knowledge instead. One `(ObjectId, Version)` pair
    /// per invalidated object; bounded by the object universe.
    floors: HashMap<ObjectId, Version>,
}

impl CacheStorage {
    /// Creates storage with unlimited capacity and no TTL.
    pub fn unlimited() -> Self {
        CacheStorage::new(None, TtlConfig::Infinite)
    }

    /// Creates storage with an optional capacity bound and a TTL policy.
    pub fn new(capacity: Option<usize>, ttl: TtlConfig) -> Self {
        CacheStorage {
            entries: HashMap::new(),
            lru: LruQueue::new(),
            capacity,
            ttl,
            footprint: 0,
            floors: HashMap::new(),
        }
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The TTL policy in force.
    pub fn ttl(&self) -> TtlConfig {
        self.ttl
    }

    /// Looks up an object. Expired entries are removed and reported as
    /// misses. A hit refreshes the object's LRU position. The returned
    /// entry shares its value blob and dependency list with the stored one
    /// (refcount bumps, no deep copy).
    pub fn get(&mut self, id: ObjectId, now: SimTime) -> Option<ObjectEntry> {
        let expired = match self.entries.get(&id) {
            None => return None,
            Some(s) => s.entry.is_expired(self.ttl, now),
        };
        if expired {
            self.remove(id);
            return None;
        }
        let stored = self.entries.get(&id).expect("checked above");
        self.lru.touch(stored.slot);
        Some(stored.entry.entry.clone())
    }

    /// Runs `f` against the cached entry **without cloning it**: the borrow
    /// lives only for the duration of the call (under the caller's stripe
    /// lock in [`ShardedCacheStorage`]). TTL expiry and LRU promotion match
    /// [`CacheStorage::get`] exactly; `None` means a miss. This is the
    /// fast-path read: no `Value` clone, no `Arc<DependencyList>` refcount
    /// ping-pong.
    // lint: hot-path
    pub fn with_entry<R>(
        &mut self,
        id: ObjectId,
        now: SimTime,
        f: impl FnOnce(&ObjectEntry) -> R,
    ) -> Option<R> {
        let (slot, expired) = match self.entries.get(&id) {
            None => return None,
            Some(s) => (s.slot, s.entry.is_expired(self.ttl, now)),
        };
        if expired {
            self.remove(id);
            return None;
        }
        self.lru.touch(slot);
        let stored = self.entries.get(&id).expect("checked above");
        Some(f(&stored.entry.entry))
    }

    /// Looks up an object without refreshing LRU or applying TTL
    /// (diagnostics and tests).
    pub fn peek(&self, id: ObjectId) -> Option<&CacheEntry> {
        self.entries.get(&id).map(|s| &s.entry)
    }

    /// Inserts (or refreshes) an object, evicting the LRU entry if the
    /// capacity bound is exceeded. Returns the evicted object, if any.
    ///
    /// An insert carrying an **older** version than the cached entry — or
    /// than the invalidation floor recorded for the object — is ignored.
    /// This is what makes the striped cache's miss path safe under
    /// concurrency: a thread that read version `v` from the backend may
    /// race with an invalidation for `v+1` (applied while the object was
    /// cached *or not*) and with a re-fetch of `v+1` by another thread;
    /// without the guard its late insert would (re)install the stale entry
    /// after the invalidation has already passed, poisoning the cache
    /// permanently under an infinite TTL. (The single-lock cache this
    /// replaced serialized fetch+insert+invalidation, so the case could not
    /// arise.) Equal versions refresh the entry and its TTL timestamp.
    pub fn insert(&mut self, entry: ObjectEntry, now: SimTime) -> Option<ObjectId> {
        let id = entry.id;
        if self.floors.get(&id).is_some_and(|&floor| entry.version < floor) {
            // An invalidation already superseded this version; admitting it
            // would resurrect data the database told us is stale.
            return None;
        }
        let size = entry.size_bytes();
        let cached = CacheEntry::new(entry, now);
        match self.entries.get_mut(&id) {
            Some(stored) if stored.entry.entry.version > cached.entry.version => {
                // Stale insert racing a newer entry: keep the newer one.
                return None;
            }
            Some(stored) => {
                self.footprint = self.footprint - stored.entry.entry.size_bytes() + size;
                stored.entry = cached;
                let slot = stored.slot;
                self.lru.touch(slot);
            }
            None => {
                let slot = self.lru.push_back(id);
                self.entries.insert(id, Stored { entry: cached, slot });
                self.footprint += size;
            }
        }
        if let Some(cap) = self.capacity {
            if self.entries.len() > cap {
                let victim = self.lru.front();
                if let Some(v) = victim {
                    self.remove(v);
                    return Some(v);
                }
            }
        }
        None
    }

    /// Removes an object from the cache (invalidation or strategy-driven
    /// eviction). Returns `true` if it was present.
    pub fn remove(&mut self, id: ObjectId) -> bool {
        match self.entries.remove(&id) {
            Some(stored) => {
                self.footprint -= stored.entry.entry.size_bytes();
                self.lru.remove(stored.slot);
                true
            }
            None => false,
        }
    }

    /// Removes the object only if its cached version is older than
    /// `newer_than`. Returns `true` if an entry was removed.
    ///
    /// This is the invalidation path: an invalidation for version `v` must
    /// not evict a cache entry that is already at `v` or newer (which can
    /// happen when invalidations are reordered). Whether or not the object
    /// is currently cached, the invalidation raises the object's admission
    /// floor so a concurrently in-flight fetch of an older version cannot
    /// be inserted after the fact (see [`CacheStorage::insert`]).
    pub fn invalidate(&mut self, id: ObjectId, newer_than: Version) -> bool {
        let floor = self.floors.entry(id).or_insert(newer_than);
        *floor = (*floor).max(newer_than);
        match self.entries.get(&id) {
            Some(s) if s.entry.entry.version < newer_than => self.remove(id),
            _ => false,
        }
    }

    /// Drops every cached entry and every recorded admission floor — a
    /// cache crash (the store is lost) or a snapshot resync (everything
    /// held is suspect). Dropping the floors is safe because both events
    /// leave the store empty: every subsequent read misses to the backend
    /// and fetches a current version, at or above any floor ever recorded.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.lru = LruQueue::new();
        self.footprint = 0;
        self.floors.clear();
    }

    /// The version currently cached for `id`, ignoring TTL.
    pub fn cached_version(&self, id: ObjectId) -> Option<Version> {
        self.entries.get(&id).map(|s| s.entry.entry.version)
    }

    /// All cached object ids (unspecified order).
    pub fn object_ids(&self) -> Vec<ObjectId> {
        self.entries.keys().copied().collect()
    }

    /// Approximate memory footprint in bytes of the cached entries (O(1):
    /// maintained incrementally).
    pub fn footprint_bytes(&self) -> usize {
        self.footprint
    }
}

impl Default for CacheStorage {
    fn default() -> Self {
        CacheStorage::unlimited()
    }
}

/// Number of stripes used by [`ShardedCacheStorage::with_default_stripes`];
/// a power of two so stripe selection is a mask.
pub const DEFAULT_STRIPES: usize = 16;

/// How many inserts a capacity-bounded [`ShardedCacheStorage`] admits
/// between automatic budget rebalances (see
/// [`ShardedCacheStorage::rebalance_budgets`]).
pub const REBALANCE_INTERVAL: u64 = 1024;

/// Which concurrent read path [`ShardedCacheStorage`] uses.
///
/// Both paths implement identical cache semantics (the differential
/// proptests in `tests/epoch_differential.rs` hold them to the same
/// answers); they differ only in how readers synchronize with writers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheReadPath {
    /// Per-stripe mutexes: every operation, reads included, locks the
    /// object's stripe. The original path; simple and exactly LRU.
    #[default]
    Locked,
    /// Epoch-based reclamation: reads pin an epoch and traverse published
    /// pointers without taking any lock; writers CAS entries in and retire
    /// the old ones through the epoch queue; LRU promotion is batched
    /// through a per-stripe spinlock (approximate recency under reader
    /// contention, exact when uncontended).
    Epoch,
}

/// The backing structure behind a [`ShardedCacheStorage`], selected by
/// [`CacheReadPath`].
#[derive(Debug)]
enum Backend {
    Locked(Striped<CacheStorage>),
    // Boxed: the epoch domain's cache-line-padded pin lanes make the
    // storage ~3 KiB inline, which would bloat every Locked instance too.
    Epoch(Box<crate::epoch_storage::EpochShardedStorage>),
}

/// Concurrent cache storage: N stripes keyed by object-id hash, behind
/// either per-stripe locks or the epoch-reclaimed read path
/// ([`CacheReadPath`]).
///
/// All methods take `&self`; each call touches exactly one stripe
/// (aggregate queries like [`ShardedCacheStorage::len`] visit each stripe
/// in turn, never two at once), so the structure is deadlock-free by
/// construction and reads of different objects contend only when they
/// hash to the same stripe.
#[derive(Debug)]
pub struct ShardedCacheStorage {
    backend: Backend,
    /// `true` when a capacity bound is configured (rebalancing applies).
    bounded: bool,
    /// Inserts since construction; every [`REBALANCE_INTERVAL`]-th insert
    /// triggers a budget rebalance on bounded storage.
    inserts: std::sync::atomic::AtomicU64,
}

impl ShardedCacheStorage {
    /// Creates sharded storage with [`DEFAULT_STRIPES`] stripes on the
    /// [`CacheReadPath::Locked`] path.
    pub fn with_default_stripes(capacity: Option<usize>, ttl: TtlConfig) -> Self {
        ShardedCacheStorage::new(DEFAULT_STRIPES, capacity, ttl)
    }

    /// Creates sharded storage with `stripes` stripes (rounded up to a
    /// power of two) on the [`CacheReadPath::Locked`] path. A total
    /// `capacity` is split evenly across stripes
    /// (`ceil(capacity / stripes)`, at least 1, per stripe).
    ///
    /// Because eviction is local to a stripe, the capacity is enforced per
    /// stripe, not globally: the aggregate entry count can exceed
    /// `capacity` by up to one entry per stripe when the split does not
    /// divide evenly (worst case `capacity + stripes - 1`). Callers that
    /// need a byte- or entry-exact budget should size `capacity` with that
    /// slack in mind. A skewed key distribution additionally shifts the
    /// budget between stripes over time; see
    /// [`ShardedCacheStorage::rebalance_budgets`].
    ///
    /// # Panics
    /// Panics if `stripes` is zero.
    pub fn new(stripes: usize, capacity: Option<usize>, ttl: TtlConfig) -> Self {
        ShardedCacheStorage::with_read_path(stripes, capacity, ttl, CacheReadPath::Locked)
    }

    /// Creates sharded storage on an explicitly chosen read path.
    ///
    /// # Panics
    /// Panics if `stripes` is zero.
    pub fn with_read_path(
        stripes: usize,
        capacity: Option<usize>,
        ttl: TtlConfig,
        path: CacheReadPath,
    ) -> Self {
        let backend = match path {
            CacheReadPath::Locked => {
                // Build the stripes first and derive the per-stripe
                // capacity from the *actual* stripe count, so the split
                // can never drift from Striped's rounding policy.
                let mut built = Striped::new(stripes, || CacheStorage::new(None, ttl));
                if let Some(capacity) = capacity {
                    let per_stripe = capacity.div_ceil(built.len()).max(1);
                    for stripe in built.iter_mut() {
                        stripe.get_mut().capacity = Some(per_stripe);
                    }
                }
                Backend::Locked(built)
            }
            CacheReadPath::Epoch => Backend::Epoch(Box::new(
                crate::epoch_storage::EpochShardedStorage::new(stripes, capacity, ttl),
            )),
        };
        ShardedCacheStorage {
            backend,
            bounded: capacity.is_some(),
            inserts: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The read path this storage was built on.
    pub fn read_path(&self) -> CacheReadPath {
        match &self.backend {
            Backend::Locked(_) => CacheReadPath::Locked,
            Backend::Epoch(_) => CacheReadPath::Epoch,
        }
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        match &self.backend {
            Backend::Locked(stripes) => stripes.len(),
            Backend::Epoch(epoch) => epoch.stripe_count(),
        }
    }

    /// The stripe index `id` routes to (both paths share the Fibonacci
    /// hash, so routing is identical).
    pub fn stripe_index_of(&self, id: ObjectId) -> usize {
        match &self.backend {
            Backend::Locked(stripes) => stripes.index_for(id.as_u64()),
            Backend::Epoch(epoch) => epoch.stripe_index_of(id),
        }
    }

    /// Reclamation counters of the epoch read path (`None` on the locked
    /// path).
    pub fn epoch_stats(&self) -> Option<tcache_types::epoch::EpochStats> {
        match &self.backend {
            Backend::Locked(_) => None,
            Backend::Epoch(epoch) => Some(epoch.epoch_stats()),
        }
    }

    fn stripe(stripes: &Striped<CacheStorage>, id: ObjectId) -> &parking_lot::Mutex<CacheStorage> {
        stripes.stripe_for(id.as_u64())
    }

    /// Looks up an object (TTL-checked, LRU-touched); see
    /// [`CacheStorage::get`].
    pub fn get(&self, id: ObjectId, now: SimTime) -> Option<ObjectEntry> {
        match &self.backend {
            Backend::Locked(stripes) => Self::stripe(stripes, id).lock().get(id, now),
            Backend::Epoch(epoch) => epoch.get(id, now),
        }
    }

    /// Runs `f` against the cached entry **without cloning it** (the borrow
    /// lives for the duration of the call, under the stripe lock on the
    /// locked path and under an epoch pin on the epoch path). TTL/LRU
    /// semantics match [`ShardedCacheStorage::get`]; `None` means a miss.
    ///
    /// `f` must not call back into this storage (locked-path closures run
    /// under the stripe lock).
    // lint: hot-path
    pub fn with_entry<R>(
        &self,
        id: ObjectId,
        now: SimTime,
        f: impl FnOnce(&ObjectEntry) -> R,
    ) -> Option<R> {
        match &self.backend {
            Backend::Locked(stripes) => Self::stripe(stripes, id).lock().with_entry(id, now, f),
            Backend::Epoch(epoch) => epoch.with_entry(id, now, f),
        }
    }

    /// Opens a transaction-scoped read session: on the epoch path the
    /// reclamation domain is pinned **once** for the whole session (one
    /// pin/unpin pair per transaction instead of ~5 sequentially consistent
    /// atomics per lookup); on the locked path the session is a zero-cost
    /// wrapper and stripe locks are still taken per lookup. Holding a
    /// session open only delays epoch reclamation — it never blocks
    /// writers, and inserts/removals through `&self` remain legal while the
    /// session is live.
    pub fn read_session(&self) -> StorageReadSession<'_> {
        let pin = match &self.backend {
            Backend::Locked(_) => None,
            Backend::Epoch(epoch) => Some(epoch.pin()),
        };
        StorageReadSession { storage: self, pin }
    }

    /// Inserts (or refreshes) an object; see [`CacheStorage::insert`].
    /// On capacity-bounded storage, every [`REBALANCE_INTERVAL`]-th insert
    /// also rebalances the per-stripe budgets.
    pub fn insert(&self, entry: ObjectEntry, now: SimTime) -> Option<ObjectId> {
        let evicted = match &self.backend {
            Backend::Locked(stripes) => Self::stripe(stripes, entry.id).lock().insert(entry, now),
            Backend::Epoch(epoch) => epoch.insert(entry, now),
        };
        if self.bounded {
            let n = self
                .inserts
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                + 1;
            if n.is_multiple_of(REBALANCE_INTERVAL) {
                self.rebalance_budgets();
            }
        }
        evicted
    }

    /// Removes an object, returning `true` if it was present.
    pub fn remove(&self, id: ObjectId) -> bool {
        match &self.backend {
            Backend::Locked(stripes) => Self::stripe(stripes, id).lock().remove(id),
            Backend::Epoch(epoch) => epoch.remove(id),
        }
    }

    /// Applies an invalidation; see [`CacheStorage::invalidate`].
    pub fn invalidate(&self, id: ObjectId, newer_than: Version) -> bool {
        match &self.backend {
            Backend::Locked(stripes) => Self::stripe(stripes, id).lock().invalidate(id, newer_than),
            Backend::Epoch(epoch) => epoch.invalidate(id, newer_than),
        }
    }

    /// Clears every stripe (entries and admission floors); see
    /// [`CacheStorage::clear`]. Stripes are cleared one at a time, never
    /// holding two locks.
    pub fn clear(&self) {
        match &self.backend {
            Backend::Locked(stripes) => {
                for stripe in stripes.iter() {
                    stripe.lock().clear();
                }
            }
            Backend::Epoch(epoch) => epoch.clear(),
        }
    }

    /// Returns `true` if `id` is currently cached (ignoring TTL).
    pub fn contains(&self, id: ObjectId) -> bool {
        match &self.backend {
            Backend::Locked(stripes) => Self::stripe(stripes, id).lock().peek(id).is_some(),
            Backend::Epoch(epoch) => epoch.contains(id),
        }
    }

    /// The version currently cached for `id`, ignoring TTL.
    pub fn cached_version(&self, id: ObjectId) -> Option<Version> {
        match &self.backend {
            Backend::Locked(stripes) => Self::stripe(stripes, id).lock().cached_version(id),
            Backend::Epoch(epoch) => epoch.cached_version(id),
        }
    }

    /// Total number of cached objects (sums the stripes; approximate under
    /// concurrent mutation).
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Locked(stripes) => stripes.iter().map(|s| s.lock().len()).sum(),
            Backend::Epoch(epoch) => epoch.len(),
        }
    }

    /// Returns `true` if nothing is cached in any stripe.
    pub fn is_empty(&self) -> bool {
        match &self.backend {
            Backend::Locked(stripes) => stripes.iter().all(|s| s.lock().is_empty()),
            Backend::Epoch(epoch) => epoch.is_empty(),
        }
    }

    /// Approximate memory footprint of all cached entries, in bytes.
    pub fn footprint_bytes(&self) -> usize {
        match &self.backend {
            Backend::Locked(stripes) => stripes.iter().map(|s| s.lock().footprint_bytes()).sum(),
            Backend::Epoch(epoch) => epoch.footprint_bytes(),
        }
    }

    /// Per-stripe `(len, capacity)` pairs (diagnostics and rebalance
    /// tests). Stripes are sampled one at a time.
    pub fn stripe_budgets(&self) -> Vec<(usize, Option<usize>)> {
        match &self.backend {
            Backend::Locked(stripes) => stripes
                .iter()
                .map(|s| {
                    let stripe = s.lock();
                    (stripe.len(), stripe.capacity)
                })
                .collect(),
            Backend::Epoch(epoch) => epoch.stripe_budgets(),
        }
    }

    /// Installs a rebalanced capacity, evicting LRU entries if a racing
    /// insert pushed the stripe past the shrunken budget (rebalancing
    /// never *plans* forced evictions, but samples and installation are
    /// separate lock acquisitions, so the stripe may have grown between
    /// them).
    fn set_stripe_capacity(&self, at: usize, capacity: usize) {
        match &self.backend {
            Backend::Locked(stripes) => {
                let mut stripe = stripes.stripe_at(at).lock();
                stripe.capacity = Some(capacity);
                while stripe.len() > capacity {
                    let Some(victim) = stripe.lru.front() else { break };
                    stripe.remove(victim);
                }
            }
            Backend::Epoch(epoch) => epoch.set_stripe_capacity(at, capacity),
        }
    }

    /// Rebalances the per-stripe entry budgets: stripes with spare
    /// capacity donate half their slack to stripes that are evicting
    /// (at or over their budget), preserving the total budget exactly.
    ///
    /// The even split chosen at construction evicts early under a skewed
    /// key distribution — a hot stripe hits its ceiling while cold
    /// stripes sit on unused budget. Bounded storage runs this
    /// automatically every [`REBALANCE_INTERVAL`] inserts; it is public
    /// so deployments with known skew phases can trigger it eagerly.
    ///
    /// Returns the number of budget units moved (0 when storage is
    /// unbounded, nothing is saturated, or nothing has slack). Each
    /// stripe is locked at most twice, one at a time — never two locks
    /// held together.
    pub fn rebalance_budgets(&self) -> usize {
        let budgets = self.stripe_budgets();
        let Some(caps) = budgets
            .iter()
            .map(|&(_, c)| c)
            .collect::<Option<Vec<usize>>>()
        else {
            return 0; // Unbounded: nothing to rebalance.
        };
        let lens: Vec<usize> = budgets.iter().map(|&(l, _)| l).collect();
        let takers: Vec<usize> = (0..caps.len()).filter(|&i| lens[i] >= caps[i]).collect();
        if takers.is_empty() {
            return 0;
        }
        // Donors give half their slack, never dropping below their current
        // occupancy (no forced evictions) or below one entry.
        let mut pool = 0usize;
        let mut new_caps = caps.clone();
        for i in 0..caps.len() {
            let slack = caps[i].saturating_sub(lens[i]);
            let donation = (slack / 2).min(caps[i].saturating_sub(lens[i].max(1)));
            if donation > 0 {
                new_caps[i] -= donation;
                pool += donation;
            }
        }
        if pool == 0 {
            return 0;
        }
        let moved = pool;
        // Round-robin the pooled budget over the saturated stripes so the
        // distribution is deterministic and even.
        let mut turn = 0usize;
        while pool > 0 {
            new_caps[takers[turn % takers.len()]] += 1;
            pool -= 1;
            turn += 1;
        }
        debug_assert_eq!(
            new_caps.iter().sum::<usize>(),
            caps.iter().sum::<usize>(),
            "rebalancing must preserve the total budget"
        );
        for (i, &cap) in new_caps.iter().enumerate() {
            if cap != caps[i] {
                self.set_stripe_capacity(i, cap);
            }
        }
        moved
    }
}

/// A transaction-scoped read view over [`ShardedCacheStorage`], created by
/// [`ShardedCacheStorage::read_session`]. On the epoch read path it holds
/// the domain pin for its whole lifetime, so a multi-read transaction pays
/// the pin/unpin cost once; on the locked path it is a transparent
/// pass-through. Lookups match [`ShardedCacheStorage::with_entry`] exactly.
pub struct StorageReadSession<'a> {
    storage: &'a ShardedCacheStorage,
    pin: Option<tcache_types::epoch::EpochGuard<'a>>,
}

impl StorageReadSession<'_> {
    /// Session-scoped [`ShardedCacheStorage::with_entry`]: same TTL
    /// semantics, but epoch-path lookups reuse the session's pin and park
    /// LRU promotions in the stripe's lossy buffer (drained by every
    /// writer before an eviction decision) instead of taking the stripe
    /// core lock — recency becomes a slightly coarser hint, eviction
    /// correctness is unchanged.
    // lint: hot-path
    pub fn with_entry<R>(
        &self,
        id: ObjectId,
        now: SimTime,
        f: impl FnOnce(&ObjectEntry) -> R,
    ) -> Option<R> {
        match (&self.storage.backend, &self.pin) {
            (Backend::Locked(stripes), _) => {
                ShardedCacheStorage::stripe(stripes, id).lock().with_entry(id, now, f)
            }
            (Backend::Epoch(epoch), Some(pin)) => epoch.with_entry_pinned(pin, id, now, true, f),
            // Unreachable by construction (epoch sessions always pin), but
            // a per-lookup pin keeps it correct if that ever changes.
            (Backend::Epoch(epoch), None) => epoch.with_entry(id, now, f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::{SimDuration, Value};

    fn obj(i: u64, v: u64) -> ObjectEntry {
        ObjectEntry::new(
            ObjectId(i),
            Value::new(v),
            Version(v),
            tcache_types::DependencyList::bounded(3),
        )
    }

    #[test]
    fn insert_get_remove() {
        let mut s = CacheStorage::unlimited();
        assert!(s.is_empty());
        s.insert(obj(1, 1), SimTime::ZERO);
        assert_eq!(s.len(), 1);
        let got = s.get(ObjectId(1), SimTime::ZERO).unwrap();
        assert_eq!(got.version, Version(1));
        assert!(s.remove(ObjectId(1)));
        assert!(!s.remove(ObjectId(1)));
        assert!(s.get(ObjectId(1), SimTime::ZERO).is_none());
    }

    #[test]
    fn clear_drops_entries_floors_and_footprint() {
        let mut s = CacheStorage::unlimited();
        s.insert(obj(1, 1), SimTime::ZERO);
        s.insert(obj(2, 1), SimTime::ZERO);
        s.invalidate(ObjectId(3), Version(5));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.footprint_bytes(), 0);
        // The floor for object 3 is gone: an old version is admissible
        // again (the post-clear store only ever sees fresh fetches, so
        // this cannot resurrect stale data in practice).
        s.insert(obj(3, 2), SimTime::ZERO);
        assert_eq!(s.cached_version(ObjectId(3)), Some(Version(2)));

        let sharded = ShardedCacheStorage::with_default_stripes(None, TtlConfig::Infinite);
        sharded.insert(obj(1, 1), SimTime::ZERO);
        sharded.insert(obj(20, 1), SimTime::ZERO);
        sharded.clear();
        assert!(sharded.is_empty());
        assert_eq!(sharded.footprint_bytes(), 0);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut s = CacheStorage::new(Some(2), TtlConfig::Infinite);
        s.insert(obj(1, 1), SimTime::ZERO);
        s.insert(obj(2, 1), SimTime::ZERO);
        // Touch object 1 so object 2 becomes the LRU victim.
        s.get(ObjectId(1), SimTime::ZERO);
        let evicted = s.insert(obj(3, 1), SimTime::ZERO);
        assert_eq!(evicted, Some(ObjectId(2)));
        assert!(s.peek(ObjectId(1)).is_some());
        assert!(s.peek(ObjectId(2)).is_none());
        assert!(s.peek(ObjectId(3)).is_some());
    }

    #[test]
    fn eviction_follows_full_recency_order() {
        let mut s = CacheStorage::new(Some(3), TtlConfig::Infinite);
        s.insert(obj(1, 1), SimTime::ZERO);
        s.insert(obj(2, 1), SimTime::ZERO);
        s.insert(obj(3, 1), SimTime::ZERO);
        // Recency now 1 < 2 < 3. Touch 1 → 2 < 3 < 1. Touch 3 → 2 < 1 < 3.
        s.get(ObjectId(1), SimTime::ZERO);
        s.get(ObjectId(3), SimTime::ZERO);
        assert_eq!(s.insert(obj(4, 1), SimTime::ZERO), Some(ObjectId(2)));
        assert_eq!(s.insert(obj(5, 1), SimTime::ZERO), Some(ObjectId(1)));
        assert_eq!(s.insert(obj(6, 1), SimTime::ZERO), Some(ObjectId(3)));
        // Re-inserting an existing object refreshes instead of growing.
        assert_eq!(s.insert(obj(4, 2), SimTime::ZERO), None);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn capacity_one_keeps_only_the_newest() {
        let mut s = CacheStorage::new(Some(1), TtlConfig::Infinite);
        assert_eq!(s.insert(obj(1, 1), SimTime::ZERO), None);
        assert_eq!(s.insert(obj(2, 1), SimTime::ZERO), Some(ObjectId(1)));
        assert_eq!(s.insert(obj(3, 1), SimTime::ZERO), Some(ObjectId(2)));
        assert_eq!(s.len(), 1);
        assert!(s.peek(ObjectId(3)).is_some());
        // Refreshing the only entry evicts nothing.
        assert_eq!(s.insert(obj(3, 2), SimTime::ZERO), None);
        assert_eq!(s.cached_version(ObjectId(3)), Some(Version(2)));
    }

    #[test]
    fn removing_and_reinserting_recycles_lru_slots() {
        let mut s = CacheStorage::new(Some(2), TtlConfig::Infinite);
        for round in 0..100u64 {
            s.insert(obj(round % 5, round), SimTime::ZERO);
            if round % 3 == 0 {
                s.remove(ObjectId(round % 5));
            }
            assert!(s.len() <= 2);
        }
        // The slab's free list keeps the queue compact: at most
        // capacity + 1 slots were ever needed simultaneously.
        assert!(s.lru.nodes.len() <= 3, "slots: {}", s.lru.nodes.len());
    }

    #[test]
    fn invalidation_while_uncached_vetoes_a_racing_stale_insert() {
        // The miss-path race: a fetcher read v1 from the backend, then an
        // invalidation for v2 arrives while nothing is cached (a no-op
        // eviction), then the fetcher's insert lands. The insert must be
        // rejected so the next read misses and fetches v2.
        let mut s = CacheStorage::unlimited();
        assert!(!s.invalidate(ObjectId(1), Version(2)), "nothing cached to evict");
        assert_eq!(s.insert(obj(1, 1), SimTime::ZERO), None);
        assert!(s.peek(ObjectId(1)).is_none(), "stale insert must be vetoed");
        // The current version (and anything newer) is admissible.
        s.insert(obj(1, 2), SimTime::ZERO);
        assert_eq!(s.cached_version(ObjectId(1)), Some(Version(2)));
        // Floors are monotone: a reordered older invalidation changes nothing.
        assert!(!s.invalidate(ObjectId(1), Version(1)));
        assert_eq!(s.cached_version(ObjectId(1)), Some(Version(2)));
    }

    #[test]
    fn stale_insert_never_buries_a_newer_entry() {
        let mut s = CacheStorage::unlimited();
        s.insert(obj(1, 5), SimTime::ZERO);
        // A racing thread's late insert of an older version is ignored…
        assert_eq!(s.insert(obj(1, 3), SimTime::from_secs(1)), None);
        assert_eq!(s.cached_version(ObjectId(1)), Some(Version(5)));
        // …an equal version refreshes (value + TTL timestamp)…
        s.insert(obj(1, 5), SimTime::from_secs(2));
        assert_eq!(s.peek(ObjectId(1)).unwrap().inserted_at, SimTime::from_secs(2));
        // …and a newer version replaces.
        s.insert(obj(1, 6), SimTime::from_secs(3));
        assert_eq!(s.cached_version(ObjectId(1)), Some(Version(6)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ttl_expiry_is_a_miss_and_removes_the_entry() {
        let ttl = TtlConfig::Limited(SimDuration::from_secs(10));
        let mut s = CacheStorage::new(None, ttl);
        assert_eq!(s.ttl(), ttl);
        s.insert(obj(1, 1), SimTime::ZERO);
        assert!(s.get(ObjectId(1), SimTime::from_secs(5)).is_some());
        assert!(s.get(ObjectId(1), SimTime::from_secs(11)).is_none());
        assert!(s.peek(ObjectId(1)).is_none(), "expired entry is dropped");
    }

    #[test]
    fn invalidate_only_removes_older_versions() {
        let mut s = CacheStorage::unlimited();
        s.insert(obj(1, 5), SimTime::ZERO);
        // An old (reordered) invalidation must not evict a newer entry.
        assert!(!s.invalidate(ObjectId(1), Version(5)));
        assert!(!s.invalidate(ObjectId(1), Version(3)));
        assert!(s.peek(ObjectId(1)).is_some());
        // A strictly newer version evicts.
        assert!(s.invalidate(ObjectId(1), Version(6)));
        assert!(s.peek(ObjectId(1)).is_none());
        // Invalidating an absent object is a no-op.
        assert!(!s.invalidate(ObjectId(9), Version(1)));
    }

    #[test]
    fn cached_version_and_ids() {
        let mut s = CacheStorage::unlimited();
        s.insert(obj(1, 4), SimTime::ZERO);
        s.insert(obj(2, 7), SimTime::ZERO);
        assert_eq!(s.cached_version(ObjectId(1)), Some(Version(4)));
        assert_eq!(s.cached_version(ObjectId(9)), None);
        let mut ids = s.object_ids();
        ids.sort();
        assert_eq!(ids, vec![ObjectId(1), ObjectId(2)]);
        assert!(s.footprint_bytes() > 0);
    }

    #[test]
    fn footprint_tracks_inserts_replacements_and_removals() {
        let mut s = CacheStorage::unlimited();
        assert_eq!(s.footprint_bytes(), 0);
        s.insert(obj(1, 1), SimTime::ZERO);
        let one = s.footprint_bytes();
        assert!(one > 0);
        s.insert(obj(2, 1), SimTime::ZERO);
        assert_eq!(s.footprint_bytes(), 2 * one);
        // Replacing an entry with a bigger payload adjusts, not adds.
        let big = ObjectEntry::new(
            ObjectId(1),
            Value::from_bytes(vec![0u8; 100]),
            Version(2),
            tcache_types::DependencyList::bounded(3),
        );
        let big_size = big.size_bytes();
        s.insert(big, SimTime::ZERO);
        assert_eq!(s.footprint_bytes(), one + big_size);
        s.remove(ObjectId(1));
        s.remove(ObjectId(2));
        assert_eq!(s.footprint_bytes(), 0);
    }

    #[test]
    fn reinsert_refreshes_value_and_timestamp() {
        let ttl = TtlConfig::Limited(SimDuration::from_secs(10));
        let mut s = CacheStorage::new(None, ttl);
        s.insert(obj(1, 1), SimTime::ZERO);
        s.insert(obj(1, 2), SimTime::from_secs(8));
        // Entry re-inserted at t=8s survives until t=18s.
        let e = s.get(ObjectId(1), SimTime::from_secs(15)).unwrap();
        assert_eq!(e.version, Version(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn sharded_storage_mirrors_single_stripe_semantics() {
        let s = ShardedCacheStorage::new(8, None, TtlConfig::Infinite);
        assert_eq!(s.stripe_count(), 8);
        assert!(s.is_empty());
        for i in 0..100 {
            s.insert(obj(i, i + 1), SimTime::ZERO);
        }
        assert_eq!(s.len(), 100);
        assert!(s.contains(ObjectId(42)));
        assert_eq!(s.cached_version(ObjectId(42)), Some(Version(43)));
        assert!(s.footprint_bytes() > 0);
        assert!(s.get(ObjectId(42), SimTime::ZERO).is_some());
        assert!(s.invalidate(ObjectId(42), Version(100)));
        assert!(!s.contains(ObjectId(42)));
        assert!(s.remove(ObjectId(41)));
        assert_eq!(s.len(), 98);
    }

    #[test]
    fn sharded_storage_is_safe_under_concurrent_mixed_load() {
        use std::sync::Arc;
        let s = Arc::new(ShardedCacheStorage::with_default_stripes(
            Some(64),
            TtlConfig::Infinite,
        ));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let id = (t * 31 + i) % 128;
                        match i % 4 {
                            0 => {
                                s.insert(obj(id, i + 1), SimTime::ZERO);
                            }
                            1 => {
                                s.get(ObjectId(id), SimTime::ZERO);
                            }
                            2 => {
                                s.invalidate(ObjectId(id), Version(i));
                            }
                            _ => {
                                s.remove(ObjectId(id));
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Capacity is enforced per stripe (64 split over 16 stripes = 4
        // each); with an even split the total cannot exceed the bound.
        assert!(s.len() <= 64);
    }

    #[test]
    #[should_panic(expected = "at least one stripe")]
    fn zero_stripes_panics() {
        let _ = ShardedCacheStorage::new(0, None, TtlConfig::Infinite);
    }

    /// Regression test for the even-split eviction problem: a key
    /// distribution skewed onto one stripe used to evict at the stripe's
    /// even share (4 of 64) while the other 15 stripes sat on unused
    /// budget. Rebalancing must donate that slack to the hot stripe —
    /// without ever growing the total budget — on both read paths.
    #[test]
    fn skewed_load_donates_budget_to_the_hot_stripe() {
        for path in [CacheReadPath::Locked, CacheReadPath::Epoch] {
            let s =
                ShardedCacheStorage::with_read_path(16, Some(64), TtlConfig::Infinite, path);
            assert_eq!(s.read_path(), path);
            let hot = s.stripe_index_of(ObjectId(0));
            // 40 distinct keys that all route to the hot stripe.
            let keys: Vec<u64> = (0..100_000u64)
                .filter(|&k| s.stripe_index_of(ObjectId(k)) == hot)
                .take(40)
                .collect();
            assert_eq!(keys.len(), 40);
            let even_share = 64usize.div_ceil(16);
            let total_before: usize =
                s.stripe_budgets().iter().map(|b| b.1.unwrap()).sum();
            for (i, &k) in keys.iter().enumerate() {
                s.insert(obj(k, 1), SimTime::ZERO);
                // "Periodic": what the insert counter does every
                // REBALANCE_INTERVAL inserts, forced here so the test
                // doesn't need a thousand warm-up inserts.
                if i % 8 == 7 {
                    s.rebalance_budgets();
                }
            }
            let budgets = s.stripe_budgets();
            let total_after: usize = budgets.iter().map(|b| b.1.unwrap()).sum();
            assert_eq!(total_after, total_before, "{path:?}: budget must be conserved");
            assert!(
                budgets[hot].1.unwrap() > even_share,
                "{path:?}: the hot stripe must receive donated budget, got {:?}",
                budgets[hot]
            );
            assert!(
                budgets[hot].0 > even_share,
                "{path:?}: the hot stripe must hold more than its even split, got {:?}",
                budgets[hot]
            );
            assert!(
                budgets.iter().all(|b| b.1.unwrap() >= 1),
                "{path:?}: donors never drop below one entry"
            );
            // Unbounded storage has nothing to move.
            let unbounded =
                ShardedCacheStorage::with_read_path(16, None, TtlConfig::Infinite, path);
            assert_eq!(unbounded.rebalance_budgets(), 0);
        }
    }

    /// The epoch path mirrors the sharded semantics end to end (the deep
    /// differential coverage lives in `tests/epoch_differential.rs`).
    #[test]
    fn epoch_path_mirrors_locked_semantics_through_the_selector() {
        let s = ShardedCacheStorage::with_read_path(
            8,
            None,
            TtlConfig::Infinite,
            CacheReadPath::Epoch,
        );
        assert_eq!(s.read_path(), CacheReadPath::Epoch);
        assert_eq!(s.stripe_count(), 8);
        for i in 0..100 {
            s.insert(obj(i, i + 1), SimTime::ZERO);
        }
        assert_eq!(s.len(), 100);
        assert!(s.contains(ObjectId(42)));
        assert_eq!(s.cached_version(ObjectId(42)), Some(Version(43)));
        assert!(s.footprint_bytes() > 0);
        assert!(s.get(ObjectId(42), SimTime::ZERO).is_some());
        assert!(s.invalidate(ObjectId(42), Version(100)));
        assert!(!s.contains(ObjectId(42)));
        assert!(s.remove(ObjectId(41)));
        assert_eq!(s.len(), 98);
        let stats = s.epoch_stats().expect("epoch path exposes stats");
        assert!(stats.pins > 0, "reads and writes pin the domain");
        s.clear();
        assert!(s.is_empty());
    }
}
