//! The edge cache server.
//!
//! [`EdgeCache`] implements the full T-Cache protocol of §III-B and, through
//! [`CachePolicyConfig`], also the two baselines of the evaluation
//! (consistency-unaware cache and TTL-limited cache). It talks to the
//! backend [`Database`] only on cache misses and RETRY read-throughs, and
//! receives asynchronous invalidations through
//! [`EdgeCache::apply_invalidation`].
//!
//! # Concurrency
//!
//! The cache is built for parallel clients. There is no global lock:
//!
//! * object storage is a [`ShardedCacheStorage`] — stripes keyed by
//!   `ObjectId` hash, each behind its own short-held lock, so hits on
//!   different objects proceed in parallel (including concurrently with
//!   invalidation upcalls);
//! * transaction records live in a [`ShardedTransactionTable`] keyed by
//!   `TxnId` hash, so different clients' transactions never contend;
//! * statistics are atomics.
//!
//! No code path holds two stripe locks at once, so the cache is
//! deadlock-free by construction. A read locks its object stripe to fetch
//! the entry (a refcount-bump copy, never a deep clone), releases it, then
//! locks its transaction stripe to run the consistency check and record the
//! read atomically with respect to that transaction. The protocol itself is
//! per-transaction sequential (one client drives one `TxnId`), which is the
//! only ordering the consistency predicates need.

use crate::consistency::{Violation, ViolationKind};
use crate::lifecycle::{
    LifecycleState, LifecycleStats, LifecycleStatsSnapshot, ObservedVec, ReadMode, ReadTxnLog,
};
use crate::stats::{CacheStats, CacheStatsSnapshot};
use crate::storage::{CacheReadPath, ShardedCacheStorage};
use crate::txn_record::{FastTxnRecord, ShardedTransactionTable};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use tcache_db::{Database, Invalidation, InvalidationReplay};
use tcache_types::{
    CacheId, CachePolicyConfig, DependencyList, ObjectEntry, ObjectId, ReadOnlyOutcome,
    RecoveryPolicy, SimDuration, SimTime, Strategy, TCacheError, TCacheResult, TxnId,
    VersionedObject, Version,
};

/// Lock-free mirror of the lifecycle state for the read fast path: healthy
/// reads check one atomic and never touch the lifecycle mutex.
const TAG_HEALTHY: u8 = 0;
const TAG_DISCONNECTED: u8 = 1;
const TAG_DEGRADED: u8 = 2;

/// Bound on pass-through validation rounds: each round re-reads every key's
/// version from the backend until the vector is stable across a full pass.
const PASS_THROUGH_VALIDATION_ROUNDS: usize = 8;

thread_local! {
    /// Reusable fast-path transaction record, one per client thread. It is
    /// cleared (not dropped) between transactions, so capacity spilled to
    /// the heap by a rare oversized transaction is kept — a warmed thread
    /// serves the common case (≤ 8 reads, cache hits) with **zero** heap
    /// allocations end to end.
    static FAST_SCRATCH: RefCell<FastTxnRecord> = RefCell::new(FastTxnRecord::new());
}

/// Outcome of the single-shot fast core (the allocation-free analogue of
/// `ReadOnlyOutcome`, without the values vector).
enum FastOutcome {
    Committed,
    Aborted { violating_object: ObjectId },
}

/// The mutable lifecycle core, held behind one mutex: the state machine and
/// the recovery policy. Locked only on transitions, gap recovery and
/// non-healthy reads — never on the healthy read path.
#[derive(Debug)]
struct Lifecycle {
    state: LifecycleState,
    policy: RecoveryPolicy,
}

/// An edge cache server.
///
/// All methods take `&self`; internally the cache uses striped locks (see
/// the module docs), so it can be shared freely between many client threads
/// and the invalidation upcall.
#[derive(Debug)]
pub struct EdgeCache {
    id: CacheId,
    backend: Arc<Database>,
    config: CachePolicyConfig,
    storage: ShardedCacheStorage,
    txns: ShardedTransactionTable,
    stats: CacheStats,
    lifecycle: Mutex<Lifecycle>,
    state_tag: AtomicU8,
    /// Highest invalidation sequence number applied (0 = none yet).
    /// Invalidations for one cache are applied by a single delivery loop on
    /// both planes, so plain load/store suffices.
    last_seq: AtomicU64,
    lifecycle_stats: LifecycleStats,
}

impl EdgeCache {
    /// Creates a cache with an explicit policy configuration on the
    /// default ([`CacheReadPath::Locked`]) storage read path.
    pub fn new(id: CacheId, backend: Arc<Database>, config: CachePolicyConfig) -> Self {
        EdgeCache::with_read_path(id, backend, config, CacheReadPath::default())
    }

    /// Creates a cache with an explicit policy configuration and storage
    /// read path ([`CacheReadPath::Epoch`] for the lock-free hit path,
    /// [`CacheReadPath::Locked`] for the per-stripe-mutex baseline).
    pub fn with_read_path(
        id: CacheId,
        backend: Arc<Database>,
        config: CachePolicyConfig,
        read_path: CacheReadPath,
    ) -> Self {
        EdgeCache {
            id,
            backend,
            config,
            storage: ShardedCacheStorage::with_read_path(
                crate::storage::DEFAULT_STRIPES,
                None,
                config.ttl,
                read_path,
            ),
            txns: ShardedTransactionTable::with_default_stripes(),
            stats: CacheStats::new(),
            lifecycle: Mutex::new(Lifecycle {
                state: LifecycleState::Healthy,
                policy: RecoveryPolicy::None,
            }),
            state_tag: AtomicU8::new(TAG_HEALTHY),
            last_seq: AtomicU64::new(0),
            lifecycle_stats: LifecycleStats::default(),
        }
    }

    /// Creates a T-Cache with the given dependency bound and strategy.
    pub fn tcache(id: CacheId, backend: Arc<Database>, bound: usize, strategy: Strategy) -> Self {
        EdgeCache::new(id, backend, CachePolicyConfig::tcache(bound, strategy))
    }

    /// Creates the consistency-unaware baseline cache.
    pub fn plain(id: CacheId, backend: Arc<Database>) -> Self {
        EdgeCache::new(id, backend, CachePolicyConfig::plain())
    }

    /// Creates the TTL-limited baseline cache of §V-B2.
    pub fn ttl_baseline(id: CacheId, backend: Arc<Database>, ttl: SimDuration) -> Self {
        EdgeCache::new(id, backend, CachePolicyConfig::ttl_baseline(ttl))
    }

    /// Creates a T-Cache with unbounded dependency lists (Theorem 1).
    pub fn unbounded(id: CacheId, backend: Arc<Database>, strategy: Strategy) -> Self {
        EdgeCache::new(id, backend, CachePolicyConfig::unbounded(strategy))
    }

    /// The storage read path this cache runs on.
    pub fn read_path(&self) -> CacheReadPath {
        self.storage.read_path()
    }

    /// The cache server's id.
    pub fn id(&self) -> CacheId {
        self.id
    }

    /// The policy configuration in force.
    pub fn config(&self) -> CachePolicyConfig {
        self.config
    }

    /// The backend database this cache reads through to.
    pub fn backend(&self) -> &Arc<Database> {
        &self.backend
    }

    /// Performs one read of the transactional read-only interface:
    /// `read(txnID, key, lastOp)` (§III-B).
    ///
    /// Returns the value and version observed. When `last_op` is `true` the
    /// cache garbage-collects the transaction record after responding, and
    /// counts the transaction as committed.
    ///
    /// # Errors
    /// * [`TCacheError::InconsistencyAbort`] if the read (or an earlier read
    ///   of the same transaction) is detected to be inconsistent and the
    ///   strategy requires aborting. The transaction record is discarded.
    /// * [`TCacheError::UnknownObject`] if the object does not exist in the
    ///   backend database.
    pub fn read(
        &self,
        now: SimTime,
        txn: TxnId,
        key: ObjectId,
        last_op: bool,
    ) -> TCacheResult<VersionedObject> {
        let (versioned, deps) = self.fetch(key, now)?;

        if !self.config.transactional {
            if last_op {
                self.stats.record_commit();
            }
            return Ok(versioned);
        }

        match self.check_and_record(txn, key, versioned.version, &deps, last_op) {
            None => Ok(versioned),
            Some(violation) => self.handle_violation(now, txn, key, violation, last_op),
        }
    }

    /// Convenience wrapper running a whole read-only transaction over the
    /// given keys (the last key carries the `last_op` flag). A detected
    /// inconsistency is reported as [`ReadOnlyOutcome::Aborted`]; other
    /// errors (unknown objects, missing backend) are propagated.
    ///
    /// # Errors
    /// Propagates every error except [`TCacheError::InconsistencyAbort`].
    pub fn execute_transaction(
        &self,
        now: SimTime,
        txn: TxnId,
        keys: &[ObjectId],
    ) -> TCacheResult<ReadOnlyOutcome> {
        if self.fast_path_eligible() {
            return self.execute_transaction_fast(now, keys);
        }
        let mut values = Vec::with_capacity(keys.len());
        for (i, &key) in keys.iter().enumerate() {
            let last_op = i + 1 == keys.len();
            match self.read(now, txn, key, last_op) {
                Ok(v) => values.push(v),
                Err(TCacheError::InconsistencyAbort {
                    violating_object, ..
                }) => {
                    return Ok(ReadOnlyOutcome::Aborted { violating_object });
                }
                Err(e) => return Err(e),
            }
        }
        Ok(ReadOnlyOutcome::Committed(values))
    }

    /// Whether the single-shot fast path may serve a whole-transaction
    /// call: the cache must run the transactional protocol, and the
    /// transaction table must be quiet. When the open-record hint is zero,
    /// no record can exist for the transaction id of a single-shot call —
    /// only a *previous sequential call of the same client* could have
    /// left one, and that call raised the hint before returning — so the
    /// stack-resident record is observationally identical to a table
    /// record created and finished within this call.
    #[inline]
    fn fast_path_eligible(&self) -> bool {
        self.config.transactional && self.txns.open_records_hint() == 0
    }

    /// [`execute_transaction`](EdgeCache::execute_transaction) on the
    /// allocation-free fast path (one `Vec` for the returned values is the
    /// only allocation).
    fn execute_transaction_fast(
        &self,
        now: SimTime,
        keys: &[ObjectId],
    ) -> TCacheResult<ReadOnlyOutcome> {
        FAST_SCRATCH.with(|scratch| {
            let mut rec = scratch.borrow_mut();
            let mut values = Vec::with_capacity(keys.len());
            let outcome = self.execute_cached_fast_core(now, keys, &mut rec, &mut |_, entry| {
                values.push(entry.to_versioned());
            })?;
            if !keys.is_empty() {
                self.stats.record_fastpath_txn();
            }
            Ok(match outcome {
                FastOutcome::Committed => ReadOnlyOutcome::Committed(values),
                FastOutcome::Aborted { violating_object } => {
                    ReadOnlyOutcome::Aborted { violating_object }
                }
            })
        })
    }

    /// The shared core of the single-shot fast path: runs a whole
    /// read-only transaction against a stack- (thread-local-) resident
    /// [`FastTxnRecord`], never touching the sharded transaction table.
    /// On the hit path the cached entry is *borrowed* under the storage
    /// entry guard — no entry clone, no `Arc` refcount ping-pong, no
    /// transaction-stripe lock — and on the epoch read path the whole
    /// transaction shares **one** storage read session (one epoch pin/unpin
    /// pair instead of one per read). `sink` observes every successful read
    /// (it runs under the entry guard and must not reenter the cache).
    ///
    /// Statistics and storage effects mirror the classic
    /// `read`/`handle_violation` path operation for operation.
    // lint: hot-path
    fn execute_cached_fast_core(
        &self,
        now: SimTime,
        keys: &[ObjectId],
        rec: &mut FastTxnRecord,
        sink: &mut dyn FnMut(ObjectId, &ObjectEntry),
    ) -> TCacheResult<FastOutcome> {
        debug_assert!(self.config.transactional);
        rec.clear();
        let session = self.storage.read_session();
        for &key in keys {
            let step = session.with_entry(key, now, |entry| {
                match rec.check_read(key, entry.version, &entry.dependencies) {
                    None => {
                        rec.record_read(key, entry.version, &entry.dependencies);
                        sink(key, entry);
                        None
                    }
                    Some(violation) => Some(violation),
                }
            });
            let violation = match step {
                Some(None) => {
                    self.stats.record_hit();
                    continue;
                }
                Some(Some(violation)) => {
                    self.stats.record_hit();
                    violation
                }
                None => {
                    // Miss: fetch, check against the record, and move the
                    // fresh entry into storage (insert happens on both
                    // verdicts, exactly like the classic miss path).
                    let fresh = self.fetch_from_backend(key)?;
                    self.stats.record_miss();
                    match rec.check_read(key, fresh.version, &fresh.dependencies) {
                        None => {
                            rec.record_read(key, fresh.version, &fresh.dependencies);
                            sink(key, &fresh);
                            self.storage.insert(fresh, now);
                            continue;
                        }
                        Some(violation) => {
                            self.storage.insert(fresh, now);
                            violation
                        }
                    }
                }
            };
            // Violation handling: the strategy arms below replicate
            // `handle_violation` (same stats, same storage effects), with
            // the re-check running against the stack-resident record.
            match self.config.strategy {
                Strategy::Abort => {
                    self.stats.record_abort();
                    return Ok(FastOutcome::Aborted {
                        violating_object: violation.violating_object,
                    });
                }
                Strategy::Evict => {
                    if self.storage.remove(violation.violating_object) {
                        self.stats.record_eviction();
                    }
                    self.stats.record_abort();
                    return Ok(FastOutcome::Aborted {
                        violating_object: violation.violating_object,
                    });
                }
                Strategy::Retry => {
                    if violation.kind == ViolationKind::CurrentReadStale {
                        if self.storage.remove(key) {
                            self.stats.record_eviction();
                        }
                        let fresh = self.fetch_from_backend(key)?;
                        self.stats.record_retry();
                        match rec.check_read(key, fresh.version, &fresh.dependencies) {
                            None => {
                                rec.record_read(key, fresh.version, &fresh.dependencies);
                                sink(key, &fresh);
                                self.storage.insert(fresh, now);
                            }
                            Some(second) => {
                                self.storage.insert(fresh, now);
                                if self.storage.remove(second.violating_object) {
                                    self.stats.record_eviction();
                                }
                                self.stats.record_abort();
                                return Ok(FastOutcome::Aborted {
                                    violating_object: second.violating_object,
                                });
                            }
                        }
                    } else {
                        if self.storage.remove(violation.violating_object) {
                            self.stats.record_eviction();
                        }
                        self.stats.record_abort();
                        return Ok(FastOutcome::Aborted {
                            violating_object: violation.violating_object,
                        });
                    }
                }
            }
        }
        if !keys.is_empty() {
            self.stats.record_commit();
        }
        Ok(FastOutcome::Committed)
    }

    /// Applies one invalidation received from the database: the cached
    /// entry is evicted if (and only if) it is older than the invalidated
    /// version, so that reordered or duplicated invalidations are harmless.
    ///
    /// Sequenced invalidations (`seq != 0`) additionally advance the
    /// cache's stream position; a jump of more than one reveals lost
    /// invalidations (a *gap*) and — under
    /// [`RecoveryPolicy::GapResync`] — triggers an immediate resync from
    /// the database's invalidation log. Unsequenced invalidations
    /// (`seq == 0`, e.g. hand-built in tests) are exempt.
    ///
    /// Only the affected object's stripe is locked; reads of other objects
    /// proceed concurrently.
    pub fn apply_invalidation(&self, invalidation: Invalidation) {
        if invalidation.seq != 0 {
            self.observe_stream_position(invalidation.seq);
        }
        if self
            .storage
            .invalidate(invalidation.object, invalidation.new_version)
        {
            self.stats.record_invalidation_applied();
        } else {
            self.stats.record_invalidation_ignored();
        }
    }

    /// Advances the stream position to `seq`, detecting gaps on the way.
    fn observe_stream_position(&self, seq: u64) {
        let prev = self.last_seq.load(Ordering::Relaxed);
        if seq <= prev {
            // Duplicate or reordered-older delivery: the position already
            // covers it.
            return;
        }
        if seq > prev + 1 {
            self.lifecycle_stats
                .gaps_detected
                .fetch_add(1, Ordering::Relaxed);
            self.lifecycle_stats
                .invalidations_missed
                .fetch_add(seq - prev - 1, Ordering::Relaxed);
            let lifecycle = self.lifecycle.lock();
            if lifecycle.policy.resyncs() && lifecycle.state == LifecycleState::Healthy {
                // Resync catches the store up past `seq`; the current
                // invalidation is then applied again harmlessly.
                self.resync();
                return;
            }
        }
        #[cfg(debug_assertions)]
        {
            // Deliveries to one cache are serialized; if that ever breaks,
            // this store could rewind the position past a newer delivery.
            let current = self.last_seq.load(Ordering::Relaxed);
            debug_assert!(
                seq > current,
                "stream position must advance monotonically: {current} -> {seq}"
            );
        }
        self.last_seq.store(seq, Ordering::Relaxed);
    }

    /// Catches the local store up with the backend: replays the database's
    /// invalidation log from the last applied sequence number, or — when
    /// the log no longer retains that suffix — drops the store entirely
    /// (every later read then refetches the current version, i.e. a
    /// versioned snapshot resync).
    fn resync(&self) {
        let after = self.last_seq.load(Ordering::Relaxed);
        match self.backend.replay_invalidations(after) {
            InvalidationReplay::Replayed(invalidations) => {
                if invalidations.is_empty() {
                    return;
                }
                self.lifecycle_stats
                    .log_replays
                    .fetch_add(1, Ordering::Relaxed);
                self.lifecycle_stats
                    .replayed_invalidations
                    .fetch_add(invalidations.len() as u64, Ordering::Relaxed);
                let mut latest = after;
                for inv in &invalidations {
                    self.storage.invalidate(inv.object, inv.new_version);
                    latest = latest.max(inv.seq);
                }
                debug_assert!(
                    latest >= after,
                    "log replay rewound the stream position: {after} -> {latest}"
                );
                self.last_seq.store(latest, Ordering::Relaxed);
            }
            InvalidationReplay::Truncated { latest } => {
                self.lifecycle_stats
                    .snapshot_resyncs
                    .fetch_add(1, Ordering::Relaxed);
                self.storage.clear();
                debug_assert!(
                    latest >= after,
                    "snapshot resync rewound the stream position: {after} -> {latest}"
                );
                self.last_seq.store(latest, Ordering::Relaxed);
            }
        }
    }

    /// Sets the recovery policy governing gap handling, staleness budgets
    /// and reconnect resyncs. Defaults to [`RecoveryPolicy::None`].
    pub fn set_recovery_policy(&self, policy: RecoveryPolicy) {
        self.lifecycle.lock().policy = policy;
    }

    /// The recovery policy in force.
    pub fn recovery_policy(&self) -> RecoveryPolicy {
        self.lifecycle.lock().policy
    }

    /// The cache's current lifecycle state.
    pub fn lifecycle_state(&self) -> LifecycleState {
        self.lifecycle.lock().state
    }

    /// `true` while the cache is down after a [`crash`](EdgeCache::crash)
    /// (until [`restart`](EdgeCache::restart)).
    pub fn is_crashed(&self) -> bool {
        self.lifecycle_state().is_crashed()
    }

    /// A snapshot of the lifecycle counters (gaps, resyncs, faults).
    #[must_use]
    pub fn lifecycle_stats(&self) -> LifecycleStatsSnapshot {
        self.lifecycle_stats.snapshot()
    }

    /// The highest invalidation sequence number applied (0 = none yet).
    pub fn last_applied_seq(&self) -> u64 {
        self.last_seq.load(Ordering::Relaxed)
    }

    /// Crashes the cache: the local store is lost and the invalidation
    /// stream is severed until [`restart`](EdgeCache::restart).
    pub fn crash(&self, now: SimTime) {
        let mut lifecycle = self.lifecycle.lock();
        self.storage.clear();
        self.lifecycle_stats.crashes.fetch_add(1, Ordering::Relaxed);
        lifecycle.state = LifecycleState::Disconnected {
            since: now,
            crashed: true,
        };
        self.state_tag.store(TAG_DISCONNECTED, Ordering::Release);
    }

    /// Restarts a crashed cache. The store is cold (dropped at crash time),
    /// which is trivially consistent with the backend, so the cache adopts
    /// the backend's current stream position and resumes healthy.
    pub fn restart(&self) {
        let mut lifecycle = self.lifecycle.lock();
        self.last_seq
            .store(self.backend.invalidation_latest_seq(), Ordering::Relaxed);
        lifecycle.state = LifecycleState::Healthy;
        self.state_tag.store(TAG_HEALTHY, Ordering::Release);
    }

    /// Partitions the cache from the database: the local store stays
    /// intact and keeps serving (staling) reads, but invalidations no
    /// longer arrive. No-op unless the cache is healthy.
    pub fn disconnect(&self, now: SimTime) {
        let mut lifecycle = self.lifecycle.lock();
        if lifecycle.state != LifecycleState::Healthy {
            return;
        }
        self.lifecycle_stats
            .partitions
            .fetch_add(1, Ordering::Relaxed);
        lifecycle.state = LifecycleState::Disconnected {
            since: now,
            crashed: false,
        };
        self.state_tag.store(TAG_DISCONNECTED, Ordering::Release);
    }

    /// Heals a partition. Under [`RecoveryPolicy::GapResync`] the cache
    /// first resyncs (log replay, or snapshot resync when the log has been
    /// truncated) so it returns to service consistent; under
    /// [`RecoveryPolicy::None`] it simply resumes with whatever staleness
    /// it accumulated. No-op when the cache is already healthy.
    pub fn reconnect(&self) {
        let mut lifecycle = self.lifecycle.lock();
        if lifecycle.state == LifecycleState::Healthy {
            return;
        }
        self.lifecycle_stats
            .reconnects
            .fetch_add(1, Ordering::Relaxed);
        if lifecycle.policy.resyncs() {
            self.resync();
        }
        lifecycle.state = LifecycleState::Healthy;
        self.state_tag.store(TAG_HEALTHY, Ordering::Release);
    }

    /// Runs a whole read-only transaction through the lifecycle-aware
    /// entry point: healthy (and within-budget disconnected) caches serve
    /// from the local store via the regular T-Cache path; a cache whose
    /// staleness budget has run out degrades to pass-through reads against
    /// the backend database. Returns what the transaction observed, so the
    /// caller can feed the consistency monitor and attribute the result to
    /// the serving path.
    ///
    /// # Errors
    /// Propagates every error except [`TCacheError::InconsistencyAbort`],
    /// which is reported as `committed: false`.
    pub fn execute_read_only(
        &self,
        now: SimTime,
        txn: TxnId,
        keys: &[ObjectId],
    ) -> TCacheResult<ReadTxnLog> {
        match self.read_mode(now) {
            ReadMode::Cached => self.execute_cached(now, txn, keys),
            ReadMode::PassThrough => self.execute_pass_through(keys),
        }
    }

    /// Decides which path serves a read-only transaction arriving `now`,
    /// degrading a disconnected cache whose staleness budget has expired.
    fn read_mode(&self, now: SimTime) -> ReadMode {
        if self.state_tag.load(Ordering::Acquire) == TAG_HEALTHY {
            return ReadMode::Cached;
        }
        let mut lifecycle = self.lifecycle.lock();
        match lifecycle.state {
            LifecycleState::Healthy => ReadMode::Cached,
            LifecycleState::Degraded { .. } => ReadMode::PassThrough,
            LifecycleState::Disconnected { since, crashed } => {
                match lifecycle.policy.staleness_budget() {
                    Some(budget) if now > since + budget => {
                        lifecycle.state = LifecycleState::Degraded { crashed };
                        self.state_tag.store(TAG_DEGRADED, Ordering::Release);
                        ReadMode::PassThrough
                    }
                    // Within budget, or no recovery machinery configured:
                    // keep serving (possibly stale) local data.
                    _ => ReadMode::Cached,
                }
            }
        }
    }

    /// The cached path of [`execute_read_only`](EdgeCache::execute_read_only):
    /// the same per-key loop as [`execute_transaction`](EdgeCache::execute_transaction),
    /// but reporting observed versions.
    fn execute_cached(
        &self,
        now: SimTime,
        txn: TxnId,
        keys: &[ObjectId],
    ) -> TCacheResult<ReadTxnLog> {
        if self.fast_path_eligible() {
            return self.execute_cached_fast(now, keys);
        }
        let mut observed = ObservedVec::new();
        for (i, &key) in keys.iter().enumerate() {
            let last_op = i + 1 == keys.len();
            match self.read(now, txn, key, last_op) {
                Ok(v) => observed.push((key, v.version)),
                Err(TCacheError::InconsistencyAbort { .. }) => {
                    return Ok(ReadTxnLog {
                        observed,
                        committed: false,
                        mode: ReadMode::Cached,
                    });
                }
                Err(e) => return Err(e),
            }
        }
        Ok(ReadTxnLog {
            observed,
            committed: true,
            mode: ReadMode::Cached,
        })
    }

    /// [`execute_cached`](EdgeCache::execute_cached) on the allocation-free
    /// fast path: for a warmed thread and a ≤ 8-read cache-hit transaction
    /// this performs **zero** heap allocations end to end (pinned by the
    /// `zero_alloc` release-mode regression test).
    // lint: hot-path
    fn execute_cached_fast(&self, now: SimTime, keys: &[ObjectId]) -> TCacheResult<ReadTxnLog> {
        FAST_SCRATCH.with(|scratch| {
            let mut rec = scratch.borrow_mut();
            let mut observed = ObservedVec::new();
            let outcome = self.execute_cached_fast_core(now, keys, &mut rec, &mut |key, entry| {
                observed.push((key, entry.version));
            })?;
            if !keys.is_empty() {
                self.stats.record_fastpath_txn();
            }
            Ok(ReadTxnLog {
                observed,
                committed: matches!(outcome, FastOutcome::Committed),
                mode: ReadMode::Cached,
            })
        })
    }

    /// The degraded path: every key is read directly from the backend,
    /// bypassing the local store, then the version vector is validated by
    /// re-reading until stable (bounded rounds). Under the planes'
    /// lockstep pacing no update runs concurrently, so the first
    /// validation pass succeeds and the result is serializable by
    /// construction.
    fn execute_pass_through(&self, keys: &[ObjectId]) -> TCacheResult<ReadTxnLog> {
        self.lifecycle_stats
            .pass_through_txns
            .fetch_add(1, Ordering::Relaxed);
        let mut observed = ObservedVec::new();
        for &key in keys {
            let entry = self.backend.read_entry(key)?;
            observed.push((key, entry.version));
        }
        for _ in 0..PASS_THROUGH_VALIDATION_ROUNDS {
            let mut changed = false;
            for (key, version) in observed.iter_mut() {
                let fresh = self.backend.peek_entry(*key)?.version;
                if fresh != *version {
                    *version = fresh;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        self.stats.record_commit();
        Ok(ReadTxnLog {
            observed,
            committed: true,
            mode: ReadMode::PassThrough,
        })
    }

    /// A snapshot of the cache's statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStatsSnapshot {
        self.stats.snapshot()
    }

    /// Number of objects currently cached.
    pub fn cached_objects(&self) -> usize {
        self.storage.len()
    }

    /// Returns `true` if `key` is currently cached (ignoring TTL).
    pub fn contains(&self, key: ObjectId) -> bool {
        self.storage.contains(key)
    }

    /// Number of read-only transactions with live records (diagnostics).
    pub fn open_transactions(&self) -> usize {
        self.txns.len()
    }

    /// Approximate memory used by cached entries, in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.storage.footprint_bytes()
    }

    /// Fetches `key` from the local storage or, on a miss, from the backend
    /// database (recording hit/miss statistics). Returns the client-visible
    /// versioned object plus the entry's dependency list (shared by
    /// refcount). On a miss the freshly fetched entry is **moved** into
    /// storage — the protocol state it needs is extracted first, so the
    /// former whole-entry clone on the miss path is gone.
    fn fetch(&self, key: ObjectId, now: SimTime) -> TCacheResult<(VersionedObject, Arc<DependencyList>)> {
        if let Some(entry) = self.storage.get(key, now) {
            self.stats.record_hit();
            let versioned = entry.to_versioned();
            return Ok((versioned, entry.dependencies));
        }
        let entry = self.fetch_from_backend(key)?;
        self.stats.record_miss();
        let versioned = entry.to_versioned();
        let deps = Arc::clone(&entry.dependencies);
        self.storage.insert(entry, now);
        Ok((versioned, deps))
    }

    /// The transaction-atomic critical section of a read: checks `entry`
    /// against the transaction's previous reads and, when consistent,
    /// records it (finishing the record on `last_op`) — all under one hold
    /// of the transaction's stripe lock. Returns the violation, if any;
    /// commit accounting happens here so the RETRY re-check shares it.
    ///
    /// Violation *handling* deliberately happens outside this lock (the
    /// handlers touch object stripes and the backend; no two stripe locks
    /// are ever held together).
    fn check_and_record(
        &self,
        txn: TxnId,
        key: ObjectId,
        version: Version,
        deps: &Arc<DependencyList>,
        last_op: bool,
    ) -> Option<Violation> {
        let (violation, created, finished) = {
            let mut table = self.txns.stripe(txn).lock();
            match table.check_read(txn, key, version, deps.as_ref()) {
                None => {
                    let created = table.record_read(txn, key, version, Arc::clone(deps));
                    let finished = last_op && table.finish(txn).is_some();
                    (None, created, finished)
                }
                Some(violation) => (Some(violation), false, false),
            }
        };
        // Open-record hint bookkeeping happens outside the stripe lock: a
        // created-and-finished record (single-read transaction) nets out.
        if created {
            self.stats.record_promoted_txn();
            if !finished {
                self.txns.note_record_created();
            }
        } else if finished {
            self.txns.note_record_finished();
        }
        if violation.is_none() && last_op {
            self.stats.record_commit();
        }
        violation
    }

    /// Reads an entry from the backend, re-bounding its dependency list to
    /// the cache's own bound (relevant when the cache is configured with a
    /// smaller bound than the database).
    fn fetch_from_backend(&self, key: ObjectId) -> TCacheResult<ObjectEntry> {
        let mut entry = self.backend.read_entry(key)?;
        let limit = self.config.dependency_bound.limit();
        if entry.dependencies.len() > limit {
            entry.dependencies = Arc::new(entry.dependencies.rebounded(limit));
        }
        Ok(entry)
    }

    /// Reacts to a detected violation according to the configured strategy.
    ///
    /// Returns `Ok(versioned)` when the RETRY strategy repaired the read and
    /// the transaction may continue with the fresh value; otherwise the
    /// transaction is aborted and an error is returned.
    fn handle_violation(
        &self,
        now: SimTime,
        txn: TxnId,
        key: ObjectId,
        violation: Violation,
        last_op: bool,
    ) -> TCacheResult<VersionedObject> {
        match self.config.strategy {
            Strategy::Abort => {
                self.abort(txn);
                Err(TCacheError::InconsistencyAbort {
                    txn,
                    violating_object: violation.violating_object,
                })
            }
            Strategy::Evict => {
                if self.storage.remove(violation.violating_object) {
                    self.stats.record_eviction();
                }
                self.abort(txn);
                Err(TCacheError::InconsistencyAbort {
                    txn,
                    violating_object: violation.violating_object,
                })
            }
            Strategy::Retry => {
                if violation.kind == ViolationKind::CurrentReadStale {
                    // The object being read is the stale one: treat the
                    // access as a miss and read through to the database.
                    if self.storage.remove(key) {
                        self.stats.record_eviction();
                    }
                    let fresh = self.fetch_from_backend(key)?;
                    self.stats.record_retry();
                    let versioned = fresh.to_versioned();
                    let deps = Arc::clone(&fresh.dependencies);
                    self.storage.insert(fresh, now);
                    // Re-check the fresh copy and record it atomically under
                    // the transaction's stripe.
                    match self.check_and_record(txn, key, versioned.version, &deps, last_op) {
                        None => Ok(versioned),
                        Some(second) => {
                            // The fresh copy exposes a violation that cannot
                            // be repaired locally (a previously returned
                            // object is stale): evict it and abort.
                            if self.storage.remove(second.violating_object) {
                                self.stats.record_eviction();
                            }
                            self.abort(txn);
                            Err(TCacheError::InconsistencyAbort {
                                txn,
                                violating_object: second.violating_object,
                            })
                        }
                    }
                } else {
                    // The stale object was already returned to the client
                    // earlier in this transaction: evict it and abort.
                    if self.storage.remove(violation.violating_object) {
                        self.stats.record_eviction();
                    }
                    self.abort(txn);
                    Err(TCacheError::InconsistencyAbort {
                        txn,
                        violating_object: violation.violating_object,
                    })
                }
            }
        }
    }

    fn abort(&self, txn: TxnId) {
        if self.txns.stripe(txn).lock().finish(txn).is_some() {
            self.txns.note_record_finished();
        }
        self.stats.record_abort();
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use tcache_db::DatabaseConfig;
    use tcache_types::{AccessSet, Value, Version};

    fn setup(bound: usize, strategy: Strategy) -> (Arc<Database>, EdgeCache) {
        let db = Arc::new(Database::new(DatabaseConfig::with_bound(bound)));
        db.populate((0..100).map(|i| (ObjectId(i), Value::new(0))));
        let cache = EdgeCache::tcache(CacheId(0), Arc::clone(&db), bound, strategy);
        (db, cache)
    }

    /// Builds the paper's canonical inconsistency: objects 1 and 2 are
    /// updated together, the cache holds a fresh copy of object 1 but a
    /// stale copy of object 2 (its invalidation was "lost").
    fn build_stale_pair(db: &Arc<Database>, cache: &EdgeCache) {
        let now = SimTime::ZERO;
        // Warm the cache with the initial versions of both objects.
        cache.read(now, TxnId(1000), ObjectId(1), false).unwrap();
        cache.read(now, TxnId(1000), ObjectId(2), true).unwrap();
        // Update both objects at the database.
        let access: AccessSet = vec![1u64, 2].into();
        let commit = db.execute_update(TxnId(1), &access).unwrap();
        // Deliver only the invalidation for object 1; the one for object 2
        // is lost.
        for inv in commit.invalidations.iter() {
            if inv.object == ObjectId(1) {
                cache.apply_invalidation(*inv);
            }
        }
    }

    #[test]
    fn cache_hit_and_miss_accounting() {
        let (_db, cache) = setup(3, Strategy::Abort);
        let now = SimTime::ZERO;
        cache.read(now, TxnId(1), ObjectId(5), true).unwrap();
        cache.read(now, TxnId(2), ObjectId(5), true).unwrap();
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.txns_committed, 2);
        assert_eq!(cache.cached_objects(), 1);
        assert!(cache.contains(ObjectId(5)));
        assert!(cache.footprint_bytes() > 0);
        assert_eq!(cache.id(), CacheId(0));
        assert_eq!(cache.backend().object_count(), 100);
    }

    #[test]
    fn last_op_garbage_collects_the_transaction_record() {
        let (_db, cache) = setup(3, Strategy::Abort);
        let now = SimTime::ZERO;
        cache.read(now, TxnId(7), ObjectId(1), false).unwrap();
        assert_eq!(cache.open_transactions(), 1);
        cache.read(now, TxnId(7), ObjectId(2), true).unwrap();
        assert_eq!(cache.open_transactions(), 0);
    }

    #[test]
    fn unknown_object_propagates_error() {
        let (_db, cache) = setup(3, Strategy::Abort);
        let err = cache
            .read(SimTime::ZERO, TxnId(1), ObjectId(999), true)
            .unwrap_err();
        assert_eq!(err, TCacheError::UnknownObject(ObjectId(999)));
    }

    #[test]
    fn abort_strategy_detects_stale_pair() {
        let (db, cache) = setup(3, Strategy::Abort);
        build_stale_pair(&db, &cache);
        let now = SimTime::from_secs(1);
        // Read object 1 (fresh, a miss because it was invalidated) then
        // object 2 (stale hit): the dependency list of object 1 names
        // object 2 at the new version, so Equation 1 fires on the second read.
        cache.read(now, TxnId(2), ObjectId(1), false).unwrap();
        let err = cache.read(now, TxnId(2), ObjectId(2), true).unwrap_err();
        assert!(matches!(
            err,
            TCacheError::InconsistencyAbort {
                violating_object: ObjectId(2),
                ..
            }
        ));
        let s = cache.stats();
        assert_eq!(s.txns_aborted, 1);
        assert_eq!(cache.open_transactions(), 0);
        // ABORT leaves the stale entry in place.
        assert!(cache.contains(ObjectId(2)));
    }

    #[test]
    fn abort_strategy_detects_stale_current_read_in_reverse_order() {
        let (db, cache) = setup(3, Strategy::Abort);
        build_stale_pair(&db, &cache);
        let now = SimTime::from_secs(1);
        // Reading the stale object 2 first succeeds (nothing to compare
        // against), then the fresh object 1 arrives with dependencies that
        // flag object 2 — Equation 1 fires with object 2 as the violator.
        cache.read(now, TxnId(2), ObjectId(2), false).unwrap();
        let err = cache.read(now, TxnId(2), ObjectId(1), true).unwrap_err();
        assert!(matches!(
            err,
            TCacheError::InconsistencyAbort {
                violating_object: ObjectId(2),
                ..
            }
        ));
    }

    #[test]
    fn evict_strategy_removes_the_stale_entry() {
        let (db, cache) = setup(3, Strategy::Evict);
        build_stale_pair(&db, &cache);
        let now = SimTime::from_secs(1);
        cache.read(now, TxnId(2), ObjectId(1), false).unwrap();
        let err = cache.read(now, TxnId(2), ObjectId(2), true).unwrap_err();
        assert!(matches!(err, TCacheError::InconsistencyAbort { .. }));
        assert!(
            !cache.contains(ObjectId(2)),
            "EVICT removes the violating entry"
        );
        assert_eq!(cache.stats().evictions, 1);
        // The next transaction over the same objects misses on object 2,
        // fetches the fresh version, and commits.
        let outcome = cache
            .execute_transaction(now, TxnId(3), &[ObjectId(1), ObjectId(2)])
            .unwrap();
        assert!(outcome.is_committed());
    }

    #[test]
    fn retry_strategy_reads_through_and_commits() {
        let (db, cache) = setup(3, Strategy::Retry);
        build_stale_pair(&db, &cache);
        let now = SimTime::from_secs(1);
        // Object 1 is read fresh; reading stale object 2 triggers Equation 2
        // via object 1's dependency list? No: object 1's dependencies flag a
        // *previous* read only after object 2 is read. Order the reads so
        // the stale object is read second: the check fires as Equation 1
        // (previous read stale) — RETRY cannot repair that. So instead read
        // the stale object *last* in a fresh transaction where object 1's
        // dependency list makes object 2's staleness a CurrentReadStale.
        cache.read(now, TxnId(2), ObjectId(1), false).unwrap();
        // Reading object 2 now: its cached version is older than the version
        // expected by object 1's dependency list → Equation 2 → read-through.
        let v = cache.read(now, TxnId(2), ObjectId(2), true).unwrap();
        let fresh = db.peek_entry(ObjectId(2)).unwrap();
        assert_eq!(v.version, fresh.version, "RETRY returned the fresh version");
        let s = cache.stats();
        // Two committed transactions: the cache-warming one plus this one.
        assert_eq!(s.txns_committed, 2);
        assert_eq!(s.txns_aborted, 0);
        assert_eq!(s.retries, 1);
        // The fresh copy replaced the stale one.
        assert_eq!(
            cache.backend().peek_entry(ObjectId(2)).unwrap().version,
            fresh.version
        );
        assert!(cache.contains(ObjectId(2)));
    }

    #[test]
    fn retry_strategy_aborts_when_previous_read_is_stale() {
        let (db, cache) = setup(3, Strategy::Retry);
        build_stale_pair(&db, &cache);
        let now = SimTime::from_secs(1);
        // Read the stale object 2 first (returned to the client), then the
        // fresh object 1: the violation is on a previously returned object,
        // which RETRY cannot repair — it evicts and aborts.
        cache.read(now, TxnId(2), ObjectId(2), false).unwrap();
        let err = cache.read(now, TxnId(2), ObjectId(1), true).unwrap_err();
        assert!(matches!(
            err,
            TCacheError::InconsistencyAbort {
                violating_object: ObjectId(2),
                ..
            }
        ));
        assert!(!cache.contains(ObjectId(2)), "stale entry evicted");
        assert_eq!(cache.stats().txns_aborted, 1);
    }

    #[test]
    fn execute_transaction_reports_aborts_as_outcome() {
        let (db, cache) = setup(3, Strategy::Abort);
        build_stale_pair(&db, &cache);
        let outcome = cache
            .execute_transaction(SimTime::from_secs(1), TxnId(2), &[ObjectId(1), ObjectId(2)])
            .unwrap();
        match outcome {
            ReadOnlyOutcome::Aborted { violating_object } => {
                assert_eq!(violating_object, ObjectId(2))
            }
            ReadOnlyOutcome::Committed(_) => panic!("expected abort"),
        }
        // Unknown objects still propagate as errors.
        assert!(cache
            .execute_transaction(SimTime::ZERO, TxnId(3), &[ObjectId(1), ObjectId(999)])
            .is_err());
        // Empty transactions commit trivially.
        let empty = cache
            .execute_transaction(SimTime::ZERO, TxnId(4), &[])
            .unwrap();
        assert!(empty.is_committed());
    }

    #[test]
    fn plain_cache_never_detects_anything() {
        let db = Arc::new(Database::new(DatabaseConfig::with_bound(3)));
        db.populate((0..10).map(|i| (ObjectId(i), Value::new(0))));
        let cache = EdgeCache::plain(CacheId(0), Arc::clone(&db));
        build_stale_pair(&db, &cache);
        let outcome = cache
            .execute_transaction(SimTime::from_secs(1), TxnId(2), &[ObjectId(1), ObjectId(2)])
            .unwrap();
        assert!(
            outcome.is_committed(),
            "the consistency-unaware cache commits the inconsistent transaction"
        );
        // And the stale version is what the client saw.
        let values = outcome.values().unwrap();
        assert_eq!(values[1].version, Version::INITIAL);
    }

    #[test]
    fn ttl_cache_expires_entries_and_rereads_fresh_data() {
        let db = Arc::new(Database::new(DatabaseConfig::with_bound(3)));
        db.populate((0..10).map(|i| (ObjectId(i), Value::new(0))));
        let cache = EdgeCache::ttl_baseline(CacheId(0), Arc::clone(&db), SimDuration::from_secs(30));
        build_stale_pair(&db, &cache);
        // Within the TTL the stale value is still served…
        let outcome = cache
            .execute_transaction(SimTime::from_secs(10), TxnId(2), &[ObjectId(2)])
            .unwrap();
        assert_eq!(outcome.values().unwrap()[0].version, Version::INITIAL);
        // …after the TTL the entry expires and the fresh version is fetched.
        let outcome = cache
            .execute_transaction(SimTime::from_secs(40), TxnId(3), &[ObjectId(2)])
            .unwrap();
        assert!(outcome.values().unwrap()[0].version > Version::INITIAL);
        assert!(cache.stats().misses >= 2);
    }

    #[test]
    fn unbounded_cache_detects_the_paper_example() {
        let db = Arc::new(Database::new(DatabaseConfig::unbounded()));
        db.populate((0..10).map(|i| (ObjectId(i), Value::new(0))));
        let cache = EdgeCache::unbounded(CacheId(0), Arc::clone(&db), Strategy::Abort);
        build_stale_pair(&db, &cache);
        let outcome = cache
            .execute_transaction(SimTime::from_secs(1), TxnId(2), &[ObjectId(1), ObjectId(2)])
            .unwrap();
        assert!(outcome.is_aborted());
        assert!(cache.config().dependency_bound.is_unbounded());
    }

    #[test]
    fn invalidations_are_idempotent_and_order_insensitive() {
        let (db, cache) = setup(3, Strategy::Abort);
        let now = SimTime::ZERO;
        cache.read(now, TxnId(1), ObjectId(1), true).unwrap();
        let c1 = db.execute_update(TxnId(10), &vec![1u64].into()).unwrap();
        let c2 = db.execute_update(TxnId(11), &vec![1u64].into()).unwrap();
        // Deliver the newer invalidation first, then the older one.
        cache.apply_invalidation(c2.invalidations.invalidations()[0]);
        // Entry evicted; re-read caches the fresh version.
        cache.read(now, TxnId(2), ObjectId(1), true).unwrap();
        cache.apply_invalidation(c1.invalidations.invalidations()[0]);
        // The stale invalidation must not evict the newer cached entry.
        assert!(cache.contains(ObjectId(1)));
        let s = cache.stats();
        assert_eq!(s.invalidations_applied, 1);
        assert_eq!(s.invalidations_ignored, 1);
    }

    #[test]
    fn crash_clears_store_and_restart_adopts_stream_position() {
        let (db, cache) = setup(3, Strategy::Abort);
        cache.read(SimTime::ZERO, TxnId(1), ObjectId(1), true).unwrap();
        assert_eq!(cache.cached_objects(), 1);

        cache.crash(SimTime::from_secs(1));
        assert_eq!(cache.cached_objects(), 0, "crash drops the store");
        assert!(cache.is_crashed());
        assert_eq!(cache.lifecycle_state().name(), "crashed");

        // Updates committed while the cache is down are logged at the db.
        db.execute_update(TxnId(10), &vec![1u64].into()).unwrap();
        db.execute_update(TxnId(11), &vec![2u64].into()).unwrap();

        cache.restart();
        assert!(!cache.is_crashed());
        assert_eq!(cache.lifecycle_state(), LifecycleState::Healthy);
        assert_eq!(
            cache.last_applied_seq(),
            db.invalidation_latest_seq(),
            "a cold store adopts the backend's current stream position"
        );
        assert_eq!(cache.lifecycle_stats().crashes, 1);
        // The restarted cache reads fresh data.
        let log = cache
            .execute_read_only(SimTime::from_secs(2), TxnId(2), &[ObjectId(1)])
            .unwrap();
        assert!(log.committed);
        assert_eq!(log.mode, ReadMode::Cached);
        assert!(log.observed[0].1 > Version::INITIAL);
    }

    #[test]
    fn gap_without_recovery_policy_is_counted_but_not_repaired() {
        let (db, cache) = setup(3, Strategy::Abort);
        cache.read(SimTime::ZERO, TxnId(1), ObjectId(1), true).unwrap();

        let c1 = db.execute_update(TxnId(10), &vec![1u64].into()).unwrap();
        cache.apply_invalidation(c1.invalidations.invalidations()[0]);
        assert_eq!(cache.last_applied_seq(), 1);

        // Lose seq 2, deliver seq 3.
        let _lost = db.execute_update(TxnId(11), &vec![1u64].into()).unwrap();
        let c3 = db.execute_update(TxnId(12), &vec![1u64].into()).unwrap();
        cache.apply_invalidation(c3.invalidations.invalidations()[0]);

        let stats = cache.lifecycle_stats();
        assert_eq!(stats.gaps_detected, 1);
        assert_eq!(stats.invalidations_missed, 1);
        assert_eq!(stats.log_replays, 0);
        assert_eq!(cache.last_applied_seq(), 3);
    }

    #[test]
    fn gap_triggers_inline_log_replay_under_gap_resync() {
        let (db, cache) = setup(3, Strategy::Abort);
        cache.set_recovery_policy(RecoveryPolicy::GapResync {
            staleness_budget: SimDuration::from_millis(100),
        });
        cache.read(SimTime::ZERO, TxnId(1), ObjectId(1), true).unwrap();
        cache.read(SimTime::ZERO, TxnId(1), ObjectId(2), true).unwrap();

        let c1 = db.execute_update(TxnId(10), &vec![1u64].into()).unwrap();
        cache.apply_invalidation(c1.invalidations.invalidations()[0]);

        // Object 2's invalidation (seq 2) is lost; seq 3 arrives and the
        // gap triggers a replay that also invalidates object 2.
        let _lost = db.execute_update(TxnId(11), &vec![2u64].into()).unwrap();
        let c3 = db.execute_update(TxnId(12), &vec![1u64].into()).unwrap();
        cache.apply_invalidation(c3.invalidations.invalidations()[0]);

        let stats = cache.lifecycle_stats();
        assert_eq!(stats.gaps_detected, 1);
        assert_eq!(stats.log_replays, 1);
        assert_eq!(stats.replayed_invalidations, 2);
        assert_eq!(stats.snapshot_resyncs, 0);
        assert_eq!(cache.last_applied_seq(), 3);
        // The stale copy of object 2 was removed by the replay, so the
        // next read fetches the fresh version.
        let log = cache
            .execute_read_only(SimTime::from_secs(1), TxnId(2), &[ObjectId(2)])
            .unwrap();
        assert!(log.observed[0].1 > Version::INITIAL);
    }

    #[test]
    fn truncated_log_forces_snapshot_resync_on_reconnect() {
        let mut config = DatabaseConfig::with_bound(3);
        config.invalidation_log_capacity = 2;
        let db = Arc::new(Database::new(config));
        db.populate((0..10).map(|i| (ObjectId(i), Value::new(0))));
        let cache = EdgeCache::tcache(CacheId(0), Arc::clone(&db), 3, Strategy::Abort);
        cache.set_recovery_policy(RecoveryPolicy::GapResync {
            staleness_budget: SimDuration::from_millis(100),
        });
        cache.read(SimTime::ZERO, TxnId(1), ObjectId(1), true).unwrap();

        cache.disconnect(SimTime::from_secs(1));
        // Far more updates than the log retains.
        for i in 0..5 {
            db.execute_update(TxnId(10 + i), &vec![1u64, 2].into()).unwrap();
        }
        cache.reconnect();

        let stats = cache.lifecycle_stats();
        assert_eq!(stats.partitions, 1);
        assert_eq!(stats.reconnects, 1);
        assert_eq!(stats.log_replays, 0);
        assert_eq!(stats.snapshot_resyncs, 1, "log truncated: full resync");
        assert_eq!(cache.cached_objects(), 0, "snapshot resync drops the store");
        assert_eq!(cache.last_applied_seq(), db.invalidation_latest_seq());
        assert_eq!(cache.lifecycle_state(), LifecycleState::Healthy);
    }

    #[test]
    fn partition_preserves_stale_entries_and_reconnect_replays() {
        let (db, cache) = setup(3, Strategy::Abort);
        cache.set_recovery_policy(RecoveryPolicy::GapResync {
            staleness_budget: SimDuration::from_secs(10),
        });
        cache.read(SimTime::ZERO, TxnId(1), ObjectId(1), true).unwrap();

        cache.disconnect(SimTime::from_secs(1));
        db.execute_update(TxnId(10), &vec![1u64].into()).unwrap();

        // Within the staleness budget the partitioned cache serves the
        // stale local copy.
        let log = cache
            .execute_read_only(SimTime::from_secs(2), TxnId(2), &[ObjectId(1)])
            .unwrap();
        assert_eq!(log.mode, ReadMode::Cached);
        assert_eq!(log.observed[0].1, Version::INITIAL, "stale within budget");

        cache.reconnect();
        let stats = cache.lifecycle_stats();
        assert_eq!(stats.reconnects, 1);
        assert_eq!(stats.log_replays, 1);
        // The replay invalidated the stale entry; the next read is fresh.
        let log = cache
            .execute_read_only(SimTime::from_secs(3), TxnId(3), &[ObjectId(1)])
            .unwrap();
        assert_eq!(log.mode, ReadMode::Cached);
        assert!(log.observed[0].1 > Version::INITIAL);
    }

    #[test]
    fn exhausted_staleness_budget_degrades_to_pass_through() {
        let (db, cache) = setup(3, Strategy::Abort);
        cache.set_recovery_policy(RecoveryPolicy::GapResync {
            staleness_budget: SimDuration::from_millis(500),
        });
        cache.read(SimTime::ZERO, TxnId(1), ObjectId(1), true).unwrap();

        cache.disconnect(SimTime::from_secs(1));
        db.execute_update(TxnId(10), &vec![1u64].into()).unwrap();

        // Past the budget the cache degrades: reads bypass the (stale)
        // store and observe the backend's current version.
        let log = cache
            .execute_read_only(SimTime::from_secs(2), TxnId(2), &[ObjectId(1)])
            .unwrap();
        assert_eq!(log.mode, ReadMode::PassThrough);
        assert!(log.committed);
        assert!(log.observed[0].1 > Version::INITIAL, "pass-through is fresh");
        assert!(matches!(
            cache.lifecycle_state(),
            LifecycleState::Degraded { crashed: false }
        ));
        assert_eq!(cache.lifecycle_stats().pass_through_txns, 1);

        // Reconnect resyncs and readmits cached reads.
        cache.reconnect();
        let log = cache
            .execute_read_only(SimTime::from_secs(3), TxnId(3), &[ObjectId(1)])
            .unwrap();
        assert_eq!(log.mode, ReadMode::Cached);
        assert!(log.observed[0].1 > Version::INITIAL);
    }

    #[test]
    fn no_recovery_policy_never_degrades() {
        let (db, cache) = setup(3, Strategy::Abort);
        cache.read(SimTime::ZERO, TxnId(1), ObjectId(1), true).unwrap();
        cache.disconnect(SimTime::from_secs(1));
        db.execute_update(TxnId(10), &vec![1u64].into()).unwrap();

        // However long the partition, RecoveryPolicy::None keeps serving
        // stale local data — the "without recovery" axis of the figure.
        let log = cache
            .execute_read_only(SimTime::from_secs(3600), TxnId(2), &[ObjectId(1)])
            .unwrap();
        assert_eq!(log.mode, ReadMode::Cached);
        assert_eq!(log.observed[0].1, Version::INITIAL);
        assert_eq!(cache.lifecycle_stats().pass_through_txns, 0);

        cache.reconnect();
        assert_eq!(cache.lifecycle_stats().log_replays, 0, "no resync");
        // The stale entry survives reconnection (still unrepaired until an
        // invalidation or eviction arrives).
        let log = cache
            .execute_read_only(SimTime::from_secs(3601), TxnId(3), &[ObjectId(1)])
            .unwrap();
        assert_eq!(log.observed[0].1, Version::INITIAL);
    }

    #[test]
    fn execute_read_only_reports_aborts_with_partial_observations() {
        let (db, cache) = setup(3, Strategy::Abort);
        build_stale_pair(&db, &cache);
        let log = cache
            .execute_read_only(SimTime::from_secs(1), TxnId(2), &[ObjectId(1), ObjectId(2)])
            .unwrap();
        assert!(!log.committed);
        assert_eq!(log.mode, ReadMode::Cached);
        assert_eq!(log.observed.len(), 1, "the aborting read observes nothing");
        // Unknown objects still propagate as errors.
        assert!(cache
            .execute_read_only(SimTime::ZERO, TxnId(3), &[ObjectId(999)])
            .is_err());
    }

    #[test]
    fn zero_bound_tcache_behaves_like_plain_for_detection() {
        let (db, cache) = {
            let db = Arc::new(Database::new(DatabaseConfig::with_bound(0)));
            db.populate((0..10).map(|i| (ObjectId(i), Value::new(0))));
            let cache = EdgeCache::tcache(CacheId(0), Arc::clone(&db), 0, Strategy::Abort);
            (db, cache)
        };
        build_stale_pair(&db, &cache);
        let outcome = cache
            .execute_transaction(SimTime::from_secs(1), TxnId(2), &[ObjectId(1), ObjectId(2)])
            .unwrap();
        assert!(
            outcome.is_committed(),
            "without dependency information nothing can be detected"
        );
    }
}
