//! The T-Cache edge cache (§III-B of the paper) and its baselines.
//!
//! The cache interacts with the database exactly like a consistency-unaware
//! cache — single-entry reads on misses, asynchronous invalidations — but it
//! additionally stores each object's version and dependency list, exports a
//! transactional read-only interface (`read(txn_id, key, last_op)`), and
//! checks every read against the transaction's previous reads using the two
//! violation predicates of §III-B. On detection it reacts with one of the
//! three strategies **ABORT**, **EVICT** or **RETRY**.
//!
//! The same implementation, parameterised by [`CachePolicyConfig`], also
//! provides the two baselines used in the evaluation: the plain
//! consistency-unaware cache and the TTL-limited cache of §V-B2.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use tcache_cache::EdgeCache;
//! use tcache_db::{Database, DatabaseConfig};
//! use tcache_types::{CacheId, ObjectId, SimTime, Strategy, TxnId, Value};
//!
//! let db = Arc::new(Database::new(DatabaseConfig::with_bound(3)));
//! db.populate((0..10).map(|i| (ObjectId(i), Value::new(0))));
//!
//! let cache = EdgeCache::tcache(CacheId(0), Arc::clone(&db), 3, Strategy::Abort);
//! let now = SimTime::ZERO;
//! let v = cache.read(now, TxnId(1), ObjectId(2), false).expect("read");
//! assert_eq!(v.id, ObjectId(2));
//! let _ = cache.read(now, TxnId(1), ObjectId(3), true).expect("read");
//! assert!(cache.stats().misses >= 2);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod consistency;
pub mod entry;
mod epoch_storage;
pub mod lifecycle;
pub mod stats;
pub mod storage;
pub mod stripe;
pub mod tcache;
pub mod txn_record;

pub use consistency::{Violation, ViolationKind};
pub use entry::CacheEntry;
pub use lifecycle::{
    LifecycleState, LifecycleStats, LifecycleStatsSnapshot, ObservedVec, ReadMode, ReadTxnLog,
};
pub use stats::{CacheStats, CacheStatsSnapshot};
pub use storage::{CacheReadPath, CacheStorage, ShardedCacheStorage};
pub use tcache::EdgeCache;
pub use tcache_types::{CachePolicyConfig, Strategy};
pub use txn_record::{FastTxnRecord, TransactionTable};
