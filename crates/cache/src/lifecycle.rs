//! Cache lifecycle: crash / partition states, gap accounting, read modes.
//!
//! An edge cache is normally `Healthy`: it serves reads from its local
//! store and applies the invalidation stream as it arrives. Faults move it
//! through a small state machine:
//!
//! ```text
//!            crash / disconnect            staleness budget exceeded
//!  Healthy ─────────────────────► Disconnected ─────────────────────► Degraded
//!     ▲                                │                                  │
//!     │          reconnect / restart   │                                  │
//!     └────────────(resync)────────────┴──────────────────────────────────┘
//! ```
//!
//! * **Disconnected** — the invalidation stream is severed (partition) or
//!   the process is gone (crash). Within the configured staleness budget a
//!   partitioned cache keeps serving possibly-stale local data; a crashed
//!   cache has lost its store entirely.
//! * **Degraded** — the staleness budget is exhausted: reads pass through
//!   to the backend database (bypassing the local store), trading latency
//!   for bounded staleness.
//! * Recovery (`reconnect` / `restart`) replays the database's invalidation
//!   log from the last sequence number the cache applied — or falls back to
//!   dropping the store when the log has been truncated — before the cache
//!   resumes serving cached reads.
//!
//! The types here are the externally visible vocabulary of that machine;
//! the transitions live on [`EdgeCache`](crate::EdgeCache).

use std::sync::atomic::{AtomicU64, Ordering};
use tcache_types::{ObjectId, SimTime, Version};

/// Where a cache is in its fault/recovery lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleState {
    /// Connected and serving cached reads.
    Healthy,
    /// The invalidation stream is severed; local reads continue (stale
    /// within the staleness budget). `crashed` distinguishes a cold store
    /// (process crash) from a partition (store intact but staling).
    Disconnected {
        /// When the cache lost its stream (crash or partition instant).
        since: SimTime,
        /// `true` if the disconnect was a crash (the store was dropped).
        crashed: bool,
    },
    /// The staleness budget is exhausted: reads pass through to the
    /// backend database until the cache resyncs.
    Degraded {
        /// Whether the underlying disconnect was a crash.
        crashed: bool,
    },
}

impl LifecycleState {
    /// Short human-readable tag (used in state-error messages).
    pub fn name(&self) -> &'static str {
        match self {
            LifecycleState::Healthy => "healthy",
            LifecycleState::Disconnected { crashed: true, .. } => "crashed",
            LifecycleState::Disconnected { crashed: false, .. } => "disconnected",
            LifecycleState::Degraded { .. } => "degraded",
        }
    }

    /// `true` for `Disconnected`/`Degraded` entered through a crash.
    pub fn is_crashed(&self) -> bool {
        matches!(
            self,
            LifecycleState::Disconnected { crashed: true, .. }
                | LifecycleState::Degraded { crashed: true }
        )
    }
}

/// How a read-only transaction was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReadMode {
    /// Served from the edge cache (the normal T-Cache path).
    Cached,
    /// Served directly from the backend database because the cache is
    /// `Degraded` — consistent by construction, but uncached.
    PassThrough,
}

/// The observed `(key, version)` pairs of one read-only transaction.
///
/// Inline up to 8 reads (the common case), spilling to the heap only for
/// larger transactions — this is what keeps the cached read fast path
/// allocation-free end to end.
pub type ObservedVec = smallvec::SmallVec<[(ObjectId, Version); 8]>;

/// The observable outcome of one read-only transaction: the versions each
/// key resolved to, whether the transaction committed, and which path
/// served it. This is what the consistency monitor consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadTxnLog {
    /// `(key, version)` for every read that returned before an abort.
    pub observed: ObservedVec,
    /// `false` if the transaction was aborted by a violation predicate.
    pub committed: bool,
    /// The path that served the transaction.
    pub mode: ReadMode,
}

/// Atomic counters for lifecycle events (monotone, never reset).
#[derive(Debug, Default)]
pub struct LifecycleStats {
    pub(crate) gaps_detected: AtomicU64,
    pub(crate) invalidations_missed: AtomicU64,
    pub(crate) log_replays: AtomicU64,
    pub(crate) replayed_invalidations: AtomicU64,
    pub(crate) snapshot_resyncs: AtomicU64,
    pub(crate) pass_through_txns: AtomicU64,
    pub(crate) crashes: AtomicU64,
    pub(crate) partitions: AtomicU64,
    pub(crate) reconnects: AtomicU64,
}

impl LifecycleStats {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> LifecycleStatsSnapshot {
        LifecycleStatsSnapshot {
            gaps_detected: self.gaps_detected.load(Ordering::Acquire),
            invalidations_missed: self.invalidations_missed.load(Ordering::Acquire),
            log_replays: self.log_replays.load(Ordering::Acquire),
            replayed_invalidations: self.replayed_invalidations.load(Ordering::Acquire),
            snapshot_resyncs: self.snapshot_resyncs.load(Ordering::Acquire),
            pass_through_txns: self.pass_through_txns.load(Ordering::Acquire),
            crashes: self.crashes.load(Ordering::Acquire),
            partitions: self.partitions.load(Ordering::Acquire),
            reconnects: self.reconnects.load(Ordering::Acquire),
        }
    }
}

/// A point-in-time copy of a cache's [`LifecycleStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleStatsSnapshot {
    /// Sequence-number gaps observed in the invalidation stream.
    pub gaps_detected: u64,
    /// Total invalidations skipped over by those gaps.
    pub invalidations_missed: u64,
    /// Recoveries served by replaying the database's invalidation log.
    pub log_replays: u64,
    /// Invalidations applied through log replays.
    pub replayed_invalidations: u64,
    /// Recoveries that had to drop the store (log truncated).
    pub snapshot_resyncs: u64,
    /// Read-only transactions served in pass-through (`Degraded`) mode.
    pub pass_through_txns: u64,
    /// Crash events injected.
    pub crashes: u64,
    /// Partition (disconnect) events injected.
    pub partitions: u64,
    /// Reconnect events (partition healed).
    pub reconnects: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_names_and_crash_flags() {
        let healthy = LifecycleState::Healthy;
        assert_eq!(healthy.name(), "healthy");
        assert!(!healthy.is_crashed());

        let crashed = LifecycleState::Disconnected {
            since: SimTime::ZERO,
            crashed: true,
        };
        assert_eq!(crashed.name(), "crashed");
        assert!(crashed.is_crashed());

        let partitioned = LifecycleState::Disconnected {
            since: SimTime::ZERO,
            crashed: false,
        };
        assert_eq!(partitioned.name(), "disconnected");
        assert!(!partitioned.is_crashed());

        let degraded = LifecycleState::Degraded { crashed: true };
        assert_eq!(degraded.name(), "degraded");
        assert!(degraded.is_crashed());
    }

    #[test]
    fn stats_snapshot_round_trips() {
        let stats = LifecycleStats::default();
        stats.gaps_detected.store(3, Ordering::Release);
        stats.invalidations_missed.store(7, Ordering::Release);
        let snap = stats.snapshot();
        assert_eq!(snap.gaps_detected, 3);
        assert_eq!(snap.invalidations_missed, 7);
        assert_eq!(snap, snap);
        assert_eq!(LifecycleStatsSnapshot::default().crashes, 0);
    }

    #[test]
    fn read_modes_order_cached_before_pass_through() {
        assert!(ReadMode::Cached < ReadMode::PassThrough);
    }
}
