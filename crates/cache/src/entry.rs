//! A single cached object.

use tcache_types::{ObjectEntry, SimTime, TtlConfig};

/// A cache-resident copy of an object: the database entry (value, version,
/// dependency list) plus the time it was brought into the cache, used for
/// TTL expiry and diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// The object data as read from the database.
    pub entry: ObjectEntry,
    /// When the entry was inserted (or last refreshed from the database).
    pub inserted_at: SimTime,
}

impl CacheEntry {
    /// Creates a cache entry inserted at `now`.
    pub fn new(entry: ObjectEntry, now: SimTime) -> Self {
        CacheEntry {
            entry,
            inserted_at: now,
        }
    }

    /// Returns `true` if the entry has outlived the configured TTL at `now`.
    pub fn is_expired(&self, ttl: TtlConfig, now: SimTime) -> bool {
        match ttl.lifetime() {
            None => false,
            Some(lifetime) => now.since(self.inserted_at) > lifetime,
        }
    }

    /// Age of the entry at `now`.
    pub fn age(&self, now: SimTime) -> tcache_types::SimDuration {
        now.since(self.inserted_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::{ObjectId, SimDuration, Value};

    fn entry_at(t: SimTime) -> CacheEntry {
        CacheEntry::new(ObjectEntry::initial(ObjectId(1), Value::new(0)), t)
    }

    #[test]
    fn infinite_ttl_never_expires() {
        let e = entry_at(SimTime::ZERO);
        assert!(!e.is_expired(TtlConfig::Infinite, SimTime::from_secs(1_000_000)));
    }

    #[test]
    fn limited_ttl_expires_after_lifetime() {
        let e = entry_at(SimTime::from_secs(10));
        let ttl = TtlConfig::Limited(SimDuration::from_secs(30));
        assert!(!e.is_expired(ttl, SimTime::from_secs(20)));
        assert!(!e.is_expired(ttl, SimTime::from_secs(40)), "exactly at the boundary is still valid");
        assert!(e.is_expired(ttl, SimTime::from_secs(41)));
    }

    #[test]
    fn age_is_measured_from_insertion() {
        let e = entry_at(SimTime::from_secs(5));
        assert_eq!(e.age(SimTime::from_secs(8)), SimDuration::from_secs(3));
        assert_eq!(e.age(SimTime::from_secs(2)), SimDuration::ZERO);
    }
}
