//! The epoch-reclaimed cache read path.
//!
//! [`EpochShardedStorage`] mirrors the semantics of the locked
//! [`crate::storage::ShardedCacheStorage`] stripes exactly (the
//! differential proptests in `tests/epoch_differential.rs` hold the two
//! to the same answers), but its hit path takes **no lock**: readers pin
//! a [`tcache_types::epoch::EpochDomain`] and traverse atomically
//! published pointers; writers unlink entries with CAS under a small
//! per-stripe lock and hand the unlinked nodes to the epoch queue for
//! deferred reclamation.
//!
//! # Layout
//!
//! Each stripe publishes an immutable **index** — a
//! `HashMap<ObjectId, Arc<Slot>>` behind an `AtomicPtr` — that is
//! copy-on-write *only when a new key first appears* (removals tombstone
//! the slot instead of shrinking the map, so the index grows with the
//! stripe's object universe, exactly like the locked path's admission
//! floors). A [`Slot`] carries the object's entry pointer (null =
//! absent) and its invalidation floor as a `fetch_max` atomic.
//!
//! # Who locks what
//!
//! * **Hit path** (`get` on a live entry): epoch pin + pointer loads +
//!   `Arc` refcount bumps only — zero lock-word traffic. LRU promotion
//!   is handed to a per-stripe spinlock via `try_lock`; if the lock is
//!   contended the promotion is parked in a small lossy buffer that the
//!   next writer (or uncontended reader) drains, so recency maintenance
//!   is batched and amortized, never blocking a read.
//! * **Writers** (`insert` / `invalidate` / `remove` / TTL expiry /
//!   eviction): serialized per stripe by the same spinlock, which guards
//!   the intrusive LRU, the len/footprint accounting and index
//!   publication. Entry pointers still change hands by CAS so the
//!   unlink-then-retire protocol is explicit in the code.
//!
//! # Why this is safe
//!
//! Every dereference of an entry or index pointer happens under an epoch
//! pin, and every pointer is retired through [`EpochDomain::defer`] only
//! *after* being unlinked from its published location. The domain delays
//! the destructor until every pin that could have observed the pointer
//! is gone (see the safety argument in `tcache_types::epoch`), so
//! readers never touch freed memory and writers never free what a
//! reader still holds.

use crate::entry::CacheEntry;
use crate::storage::LruQueue;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use tcache_types::epoch::{EpochDomain, EpochGuard, EpochStats};
use tcache_types::{ObjectEntry, ObjectId, SimTime, TtlConfig, Version};

/// The published per-stripe key index. Immutable once published; replaced
/// wholesale (copy-on-write) when a new key appears and retired through
/// the epoch queue.
type Index = HashMap<ObjectId, Arc<Slot>>;

/// One object's publication point.
#[derive(Debug)]
struct Slot {
    /// The cached entry; null means absent (never cached, invalidated,
    /// evicted or expired — a tombstone). Owned as a leaked `Box`;
    /// reclaimed through the epoch queue after being unlinked.
    entry: AtomicPtr<CacheEntry>,
    /// Minimum admissible version (`Version.as_u64()`), raised
    /// monotonically by invalidations via `fetch_max`. Mirrors the locked
    /// path's `floors` map.
    floor: AtomicU64,
    /// The entry's slab slot in the stripe's LRU queue, or
    /// [`NO_LRU_SLOT`] while unlinked. Written only under the stripe core
    /// lock (link/unlink), read by hit promotion *while holding* that
    /// lock — so promoting a hit costs one relaxed load instead of a
    /// `lru_slots` hash lookup.
    lru_slot: AtomicUsize,
}

/// Sentinel for [`Slot::lru_slot`]: the entry is not linked into the LRU.
const NO_LRU_SLOT: usize = usize::MAX;

impl Slot {
    fn empty() -> Arc<Slot> {
        Arc::new(Slot {
            entry: AtomicPtr::new(ptr::null_mut()),
            floor: AtomicU64::new(0),
            lru_slot: AtomicUsize::new(NO_LRU_SLOT),
        })
    }
}

/// Number of parked-promotion slots per stripe. Deliberately small and
/// lossy: a dropped promotion only costs recency precision.
const PROMO_SLOTS: usize = 32;

/// A fixed-size lossy buffer of LRU promotions a reader could not apply
/// because the stripe lock was contended. Entries are `ObjectId + 1`
/// (zero = empty) so the buffer needs no separate occupancy bits.
#[derive(Debug, Default)]
struct PromoBuffer {
    slots: [AtomicU64; PROMO_SLOTS],
    cursor: AtomicUsize,
    /// Approximate occupancy. Zero means "certainly empty", letting the
    /// hot path skip the 32-slot scan with one load; a stale non-zero only
    /// costs one wasted scan, a racy reset only drops promotions (which
    /// the buffer is allowed to do — recency is a hint).
    pending: AtomicUsize,
}

impl PromoBuffer {
    fn record(&self, id: ObjectId) {
        let at = self.cursor.fetch_add(1, Ordering::Relaxed) % PROMO_SLOTS;
        // Overwriting an unapplied promotion is fine: recency is a hint.
        self.slots[at].store(id.as_u64() + 1, Ordering::Relaxed);
        self.pending.store(1, Ordering::Release);
    }

    fn drain(&self, mut apply: impl FnMut(ObjectId)) {
        if self.pending.load(Ordering::Acquire) == 0 {
            return;
        }
        self.pending.store(0, Ordering::Release);
        for slot in &self.slots {
            let tagged = slot.swap(0, Ordering::Relaxed);
            if tagged != 0 {
                apply(ObjectId(tagged - 1));
            }
        }
    }
}

/// The mutable per-stripe state, guarded by the stripe spinlock. Readers
/// on the hit path never take it (except opportunistically, to promote).
#[derive(Debug)]
struct StripeCore {
    lru: LruQueue,
    /// LRU slab slot per *present* object (tombstoned objects are absent).
    lru_slots: HashMap<ObjectId, usize>,
    len: usize,
    footprint: usize,
    capacity: Option<usize>,
}

#[derive(Debug)]
struct EpochStripe {
    index: AtomicPtr<Index>,
    core: Mutex<StripeCore>,
    promo: PromoBuffer,
}

/// Moves exclusive ownership of a raw pointer into a reclamation closure.
///
/// Safety: the wrapped pointer is unlinked from every shared location
/// before being wrapped, so the closure is its sole owner, and the
/// pointee (`CacheEntry` / `Index`) is itself `Send`.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Unwraps the pointer. Taking `self` by value makes closures capture
    /// the whole wrapper (edition-2021 closures would otherwise capture
    /// the raw-pointer field disjointly, defeating the `Send` impl).
    fn take(self) -> *mut T {
        self.0
    }
}

/// Sharded cache storage whose read side is epoch-reclaimed instead of
/// locked. Constructed through
/// [`crate::storage::ShardedCacheStorage::with_read_path`].
#[derive(Debug)]
pub(crate) struct EpochShardedStorage {
    stripes: Box<[EpochStripe]>,
    mask: u64,
    ttl: TtlConfig,
    domain: EpochDomain,
}

impl EpochShardedStorage {
    /// Creates storage with `stripes` stripes (rounded up to a power of
    /// two, matching [`crate::stripe::Striped`]) and an even per-stripe
    /// capacity split (`ceil(capacity / stripes)`, at least 1).
    ///
    /// # Panics
    /// Panics if `stripes` is zero.
    pub(crate) fn new(stripes: usize, capacity: Option<usize>, ttl: TtlConfig) -> Self {
        assert!(stripes > 0, "need at least one stripe");
        let count = stripes.next_power_of_two();
        let per_stripe = capacity.map(|c| c.div_ceil(count).max(1));
        let stripes: Vec<EpochStripe> = (0..count)
            .map(|_| EpochStripe {
                index: AtomicPtr::new(Box::into_raw(Box::new(Index::new()))),
                core: Mutex::new(StripeCore {
                    lru: LruQueue::new(),
                    lru_slots: HashMap::new(),
                    len: 0,
                    footprint: 0,
                    capacity: per_stripe,
                }),
                promo: PromoBuffer::default(),
            })
            .collect();
        EpochShardedStorage {
            mask: count as u64 - 1,
            stripes: stripes.into_boxed_slice(),
            ttl,
            domain: EpochDomain::new(),
        }
    }

    pub(crate) fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Reclamation counters of the backing epoch domain.
    pub(crate) fn epoch_stats(&self) -> EpochStats {
        self.domain.stats()
    }

    /// Same Fibonacci-hash stripe routing as [`crate::stripe::Striped`],
    /// so the two read paths shard identically.
    pub(crate) fn stripe_index_of(&self, id: ObjectId) -> usize {
        let h = id.as_u64().wrapping_mul(0x9E3779B97F4A7C15) >> 32;
        (h & self.mask) as usize
    }

    fn stripe_of(&self, id: ObjectId) -> &EpochStripe {
        &self.stripes[self.stripe_index_of(id)]
    }

    /// Loads the stripe's published index. Caller must hold `guard`.
    fn index<'g>(&self, stripe: &'g EpochStripe, _guard: &'g EpochGuard<'_>) -> &'g Index {
        // Safety: the pointer is always a live leaked Box (replaced by
        // copy-on-write and retired through the epoch queue; the pin in
        // `_guard` delays that reclamation past this borrow).
        unsafe { &*stripe.index.load(Ordering::SeqCst) }
    }

    /// Hands an unlinked entry node to the epoch queue.
    fn retire_entry(&self, node: *mut CacheEntry) {
        let node = SendPtr(node);
        self.domain.defer(move || {
            // Safety: sole owner (see SendPtr).
            drop(unsafe { Box::from_raw(node.take()) });
        });
    }

    /// Unlinks `id`'s entry (CAS to null) and updates the locked
    /// bookkeeping. Caller holds the stripe core lock and an epoch pin.
    /// Returns `false` if the slot was already a tombstone.
    fn unlink_locked(&self, core: &mut StripeCore, slot: &Slot, id: ObjectId) -> bool {
        let old = slot.entry.swap(ptr::null_mut(), Ordering::SeqCst);
        if old.is_null() {
            return false;
        }
        // Safety: just unlinked under the stripe lock; the epoch pin keeps
        // the node alive for this read.
        core.footprint -= unsafe { &*old }.entry.size_bytes();
        core.len -= 1;
        if let Some(lru_slot) = core.lru_slots.remove(&id) {
            core.lru.remove(lru_slot);
        }
        slot.lru_slot.store(NO_LRU_SLOT, Ordering::Relaxed);
        self.retire_entry(old);
        true
    }

    /// Applies parked promotions in insertion-buffer order. Called by
    /// every writer (and by uncontended readers) so promotions a
    /// contended reader parked are folded in before the next eviction
    /// decision.
    fn drain_promotions(&self, stripe: &EpochStripe, core: &mut StripeCore) {
        stripe.promo.drain(|id| {
            if let Some(&lru_slot) = core.lru_slots.get(&id) {
                core.lru.touch(lru_slot);
            }
        });
    }

    /// Returns `id`'s slot, publishing a new index copy if the key has
    /// never been seen. Caller holds the stripe core lock (serializing
    /// publication) and an epoch pin.
    fn slot_or_insert(
        &self,
        stripe: &EpochStripe,
        guard: &EpochGuard<'_>,
        id: ObjectId,
    ) -> Arc<Slot> {
        let index = self.index(stripe, guard);
        if let Some(slot) = index.get(&id) {
            return Arc::clone(slot);
        }
        // Copy-on-write: clone the (Arc-shared) slots into a new map, add
        // the key, publish, retire the old shell. Only first-touch of a
        // key pays this; steady-state writes reuse the published slots.
        let mut next = index.clone();
        let slot = Slot::empty();
        next.insert(id, Arc::clone(&slot));
        let old = stripe
            .index
            .swap(Box::into_raw(Box::new(next)), Ordering::SeqCst);
        let old = SendPtr(old);
        self.domain.defer(move || {
            // Safety: unlinked by the swap above; slots are Arc-shared
            // with the successor map, so only the map shell is freed.
            drop(unsafe { Box::from_raw(old.take()) });
        });
        slot
    }

    /// Lock-free lookup; see [`crate::storage::CacheStorage::get`] for
    /// the semantics this mirrors (TTL expiry is a miss that removes the
    /// entry; a hit refreshes recency).
    pub(crate) fn get(&self, id: ObjectId, now: SimTime) -> Option<ObjectEntry> {
        let stripe = self.stripe_of(id);
        let guard = self.domain.pin();
        let slot = self.index(stripe, &guard).get(&id)?;
        let node = slot.entry.load(Ordering::SeqCst);
        if node.is_null() {
            return None;
        }
        // Safety: non-null entry pointers are retired only after being
        // unlinked, and the pin delays their reclamation.
        let entry = unsafe { &*node };
        if entry.is_expired(self.ttl, now) {
            self.remove_expired(stripe, &guard, id, now);
            return None;
        }
        let value = entry.entry.clone();
        // Hit promotion: opportunistic, never blocking the read. The slab
        // slot cached on the `Slot` (stable under the held core lock)
        // replaces the `lru_slots` hash lookup.
        match stripe.core.try_lock() {
            Some(mut core) => {
                self.drain_promotions(stripe, &mut core);
                let lru_slot = slot.lru_slot.load(Ordering::Relaxed);
                if lru_slot != NO_LRU_SLOT {
                    core.lru.touch(lru_slot);
                }
            }
            None => stripe.promo.record(id),
        }
        Some(value)
    }

    /// Runs `f` against the cached entry **without cloning it**: the borrow
    /// lives only for the epoch pin. Semantics (TTL expiry, opportunistic
    /// LRU promotion) match [`EpochShardedStorage::get`] exactly; `None`
    /// means a miss.
    // lint: hot-path
    pub(crate) fn with_entry<R>(
        &self,
        id: ObjectId,
        now: SimTime,
        f: impl FnOnce(&ObjectEntry) -> R,
    ) -> Option<R> {
        let guard = self.domain.pin();
        self.with_entry_pinned(&guard, id, now, false, f)
    }

    /// Pins the reclamation domain for a transaction-scoped read session
    /// ([`crate::storage::StorageReadSession`]): one pin/unpin pair covers
    /// every lookup of the transaction instead of one per read.
    pub(crate) fn pin(&self) -> EpochGuard<'_> {
        self.domain.pin()
    }

    /// [`EpochShardedStorage::with_entry`] under a caller-held pin. The
    /// guard must come from this storage's own domain
    /// ([`EpochShardedStorage::pin`]); holding it across several lookups
    /// only delays reclamation — it never blocks a writer.
    ///
    /// `park_promotion` selects the recency policy: `false` promotes the
    /// hit inline when the stripe core lock is free (the per-operation
    /// behaviour of [`EpochShardedStorage::get`]); `true` — the
    /// transaction-session fast path — always parks the promotion in the
    /// lossy [`PromoBuffer`], skipping the `try_lock` round trip
    /// entirely. Parked promotions are folded in by every writer before
    /// its eviction decision, so the only cost is recency *precision*
    /// (the buffer is allowed to drop hints), never correctness.
    // lint: hot-path
    pub(crate) fn with_entry_pinned<R>(
        &self,
        guard: &EpochGuard<'_>,
        id: ObjectId,
        now: SimTime,
        park_promotion: bool,
        f: impl FnOnce(&ObjectEntry) -> R,
    ) -> Option<R> {
        let stripe = self.stripe_of(id);
        let slot = self.index(stripe, guard).get(&id)?;
        let node = slot.entry.load(Ordering::SeqCst);
        if node.is_null() {
            return None;
        }
        // Safety: as in `get`.
        let entry = unsafe { &*node };
        if entry.is_expired(self.ttl, now) {
            self.remove_expired(stripe, guard, id, now);
            return None;
        }
        let result = f(&entry.entry);
        if park_promotion {
            stripe.promo.record(id);
            return Some(result);
        }
        match stripe.core.try_lock() {
            Some(mut core) => {
                self.drain_promotions(stripe, &mut core);
                let lru_slot = slot.lru_slot.load(Ordering::Relaxed);
                if lru_slot != NO_LRU_SLOT {
                    core.lru.touch(lru_slot);
                }
            }
            None => stripe.promo.record(id),
        }
        Some(result)
    }

    /// The expiry slow path: re-checks under the stripe lock (the entry
    /// may have been refreshed since the lock-free read) and unlinks.
    fn remove_expired(&self, stripe: &EpochStripe, guard: &EpochGuard<'_>, id: ObjectId, now: SimTime) {
        let mut core = stripe.core.lock();
        if let Some(slot) = self.index(stripe, guard).get(&id) {
            let node = slot.entry.load(Ordering::SeqCst);
            // Safety: as in `get`.
            if !node.is_null() && unsafe { &*node }.is_expired(self.ttl, now) {
                self.unlink_locked(&mut core, slot, id);
            }
        }
    }

    /// Insert/refresh; see [`crate::storage::CacheStorage::insert`] for
    /// the floor/version admission rules this mirrors. Returns the
    /// evicted object, if the capacity bound forced one out.
    pub(crate) fn insert(&self, entry: ObjectEntry, now: SimTime) -> Option<ObjectId> {
        let id = entry.id;
        let stripe = self.stripe_of(id);
        let guard = self.domain.pin();
        let mut core = stripe.core.lock();
        self.drain_promotions(stripe, &mut core);
        let slot = self.slot_or_insert(stripe, &guard, id);
        if entry.version.as_u64() < slot.floor.load(Ordering::SeqCst) {
            // An invalidation already superseded this version.
            return None;
        }
        let current = slot.entry.load(Ordering::SeqCst);
        // Safety: as in `get`.
        if !current.is_null() && unsafe { &*current }.entry.version > entry.version {
            // Stale insert racing a newer entry: keep the newer one.
            return None;
        }
        let size = entry.size_bytes();
        let fresh = Box::into_raw(Box::new(CacheEntry::new(entry, now)));
        // Writers are serialized by the stripe lock, so the CAS cannot
        // lose; it stays a CAS (not a blind store) so the
        // unlink-then-retire protocol is checked, not assumed.
        slot.entry
            .compare_exchange(current, fresh, Ordering::SeqCst, Ordering::SeqCst)
            .expect("entry CAS raced despite the stripe write lock");
        if current.is_null() {
            core.len += 1;
            core.footprint += size;
            let lru_slot = core.lru.push_back(id);
            core.lru_slots.insert(id, lru_slot);
            slot.lru_slot.store(lru_slot, Ordering::Relaxed);
        } else {
            // Safety: just unlinked by the CAS; pin keeps it readable.
            core.footprint = core.footprint - unsafe { &*current }.entry.size_bytes() + size;
            if let Some(&lru_slot) = core.lru_slots.get(&id) {
                core.lru.touch(lru_slot);
            }
            self.retire_entry(current);
        }
        if let Some(capacity) = core.capacity {
            if core.len > capacity {
                if let Some(victim) = core.lru.front() {
                    if let Some(victim_slot) = self.index(stripe, &guard).get(&victim) {
                        self.unlink_locked(&mut core, victim_slot, victim);
                    }
                    return Some(victim);
                }
            }
        }
        None
    }

    /// Removes an object, returning `true` if it was present.
    pub(crate) fn remove(&self, id: ObjectId) -> bool {
        let stripe = self.stripe_of(id);
        let guard = self.domain.pin();
        let mut core = stripe.core.lock();
        self.drain_promotions(stripe, &mut core);
        match self.index(stripe, &guard).get(&id) {
            Some(slot) => self.unlink_locked(&mut core, slot, id),
            None => false,
        }
    }

    /// Invalidation; see [`crate::storage::CacheStorage::invalidate`]:
    /// raises the admission floor unconditionally, evicts only a strictly
    /// older cached version.
    pub(crate) fn invalidate(&self, id: ObjectId, newer_than: Version) -> bool {
        let stripe = self.stripe_of(id);
        let guard = self.domain.pin();
        let mut core = stripe.core.lock();
        self.drain_promotions(stripe, &mut core);
        let slot = self.slot_or_insert(stripe, &guard, id);
        slot.floor.fetch_max(newer_than.as_u64(), Ordering::SeqCst);
        let current = slot.entry.load(Ordering::SeqCst);
        // Safety: as in `get`.
        if !current.is_null() && unsafe { &*current }.entry.version < newer_than {
            self.unlink_locked(&mut core, &slot, id)
        } else {
            false
        }
    }

    /// Clears every stripe: entries, floors and recency state. The old
    /// index (and every entry it still holds) is retired wholesale; a
    /// racing writer that already held the old index publishes into slots
    /// the retirement closure will still see (its pin predates the swap,
    /// so the closure runs after its unpin).
    pub(crate) fn clear(&self) {
        for stripe in self.stripes.iter() {
            let _guard = self.domain.pin();
            let mut core = stripe.core.lock();
            let old = stripe
                .index
                .swap(Box::into_raw(Box::new(Index::new())), Ordering::SeqCst);
            // Readers pinned on the old index can still attempt hit
            // promotion against the *reset* LRU below; clearing their
            // cached slab slots (under the held core lock) makes those
            // promotions no-ops instead of touches of recycled slots.
            // Safety: the shell stays alive until the deferred drop.
            for slot in unsafe { &*old }.values() {
                slot.lru_slot.store(NO_LRU_SLOT, Ordering::Relaxed);
            }
            let old = SendPtr(old);
            self.domain.defer(move || {
                // Safety: the map shell was unlinked by the swap; by the
                // time this runs no pin that could observe it remains, so
                // the closure is the sole owner of the shell and of every
                // entry still linked into its slots.
                let index = unsafe { Box::from_raw(old.take()) };
                for slot in index.values() {
                    let node = slot.entry.swap(ptr::null_mut(), Ordering::SeqCst);
                    if !node.is_null() {
                        drop(unsafe { Box::from_raw(node) });
                    }
                }
            });
            stripe.promo.drain(|_| {});
            core.lru = LruQueue::new();
            core.lru_slots.clear();
            core.len = 0;
            core.footprint = 0;
        }
    }

    /// Whether `id` is currently cached (ignoring TTL).
    pub(crate) fn contains(&self, id: ObjectId) -> bool {
        let stripe = self.stripe_of(id);
        let guard = self.domain.pin();
        self.index(stripe, &guard)
            .get(&id)
            .is_some_and(|slot| !slot.entry.load(Ordering::SeqCst).is_null())
    }

    /// The version currently cached for `id`, ignoring TTL.
    pub(crate) fn cached_version(&self, id: ObjectId) -> Option<Version> {
        let stripe = self.stripe_of(id);
        let guard = self.domain.pin();
        let slot = self.index(stripe, &guard).get(&id)?;
        let node = slot.entry.load(Ordering::SeqCst);
        if node.is_null() {
            None
        } else {
            // Safety: as in `get`.
            Some(unsafe { &*node }.entry.version)
        }
    }

    /// Total cached objects (approximate under concurrent mutation).
    pub(crate) fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.core.lock().len).sum()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.stripes.iter().all(|s| s.core.lock().len == 0)
    }

    /// Approximate footprint of cached entries, in bytes.
    pub(crate) fn footprint_bytes(&self) -> usize {
        self.stripes.iter().map(|s| s.core.lock().footprint).sum()
    }

    /// Per-stripe `(len, capacity)` pairs for budget rebalancing.
    pub(crate) fn stripe_budgets(&self) -> Vec<(usize, Option<usize>)> {
        self.stripes
            .iter()
            .map(|s| {
                let core = s.core.lock();
                (core.len, core.capacity)
            })
            .collect()
    }

    /// Installs a rebalanced capacity for stripe `at`, evicting LRU
    /// entries if a racing insert pushed the stripe past the new budget.
    pub(crate) fn set_stripe_capacity(&self, at: usize, capacity: usize) {
        let stripe = &self.stripes[at];
        let guard = self.domain.pin();
        let mut core = stripe.core.lock();
        core.capacity = Some(capacity);
        while core.len > capacity {
            let Some(victim) = core.lru.front() else { break };
            if let Some(slot) = self.index(stripe, &guard).get(&victim) {
                self.unlink_locked(&mut core, slot, victim);
            } else {
                break;
            }
        }
    }
}

impl Drop for EpochShardedStorage {
    fn drop(&mut self) {
        // Exclusive access: no pins can exist. Free the live indexes and
        // their entries directly; already-retired garbage is reclaimed by
        // the domain's own Drop.
        for stripe in self.stripes.iter() {
            let index = stripe.index.swap(ptr::null_mut(), Ordering::SeqCst);
            if index.is_null() {
                continue;
            }
            // Safety: sole owner of the published index and, transitively,
            // of every still-linked entry node.
            let index = unsafe { Box::from_raw(index) };
            for slot in index.values() {
                let node = slot.entry.swap(ptr::null_mut(), Ordering::SeqCst);
                if !node.is_null() {
                    drop(unsafe { Box::from_raw(node) });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcache_types::{DependencyList, SimDuration, Value};

    fn obj(i: u64, v: u64) -> ObjectEntry {
        ObjectEntry::new(
            ObjectId(i),
            Value::new(v),
            Version(v),
            DependencyList::bounded(3),
        )
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let s = EpochShardedStorage::new(8, None, TtlConfig::Infinite);
        assert!(s.is_empty());
        assert_eq!(s.insert(obj(1, 1), SimTime::ZERO), None);
        assert_eq!(s.len(), 1);
        assert_eq!(
            s.get(ObjectId(1), SimTime::ZERO).unwrap().version,
            Version(1)
        );
        assert!(s.contains(ObjectId(1)));
        assert!(s.footprint_bytes() > 0);
        assert!(s.remove(ObjectId(1)));
        assert!(!s.remove(ObjectId(1)), "tombstone removes are no-ops");
        assert!(s.get(ObjectId(1), SimTime::ZERO).is_none());
        assert_eq!(s.footprint_bytes(), 0);
    }

    #[test]
    fn floor_vetoes_stale_insert_while_uncached() {
        let s = EpochShardedStorage::new(4, None, TtlConfig::Infinite);
        assert!(!s.invalidate(ObjectId(1), Version(2)));
        assert_eq!(s.insert(obj(1, 1), SimTime::ZERO), None);
        assert!(!s.contains(ObjectId(1)), "stale insert must be vetoed");
        s.insert(obj(1, 2), SimTime::ZERO);
        assert_eq!(s.cached_version(ObjectId(1)), Some(Version(2)));
        assert!(!s.invalidate(ObjectId(1), Version(1)), "floors are monotone");
        assert_eq!(s.cached_version(ObjectId(1)), Some(Version(2)));
    }

    #[test]
    fn invalidate_only_removes_older_versions() {
        let s = EpochShardedStorage::new(4, None, TtlConfig::Infinite);
        s.insert(obj(1, 5), SimTime::ZERO);
        assert!(!s.invalidate(ObjectId(1), Version(5)));
        assert!(!s.invalidate(ObjectId(1), Version(3)));
        assert!(s.contains(ObjectId(1)));
        assert!(s.invalidate(ObjectId(1), Version(6)));
        assert!(!s.contains(ObjectId(1)));
    }

    #[test]
    fn ttl_expiry_is_a_miss_and_removes_the_entry() {
        let ttl = TtlConfig::Limited(SimDuration::from_secs(10));
        let s = EpochShardedStorage::new(4, None, ttl);
        s.insert(obj(1, 1), SimTime::ZERO);
        assert!(s.get(ObjectId(1), SimTime::from_secs(5)).is_some());
        assert!(s.get(ObjectId(1), SimTime::from_secs(11)).is_none());
        assert!(!s.contains(ObjectId(1)), "expired entry is dropped");
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn capacity_evicts_in_recency_order_per_stripe() {
        // One stripe so recency order is global and deterministic.
        let s = EpochShardedStorage::new(1, Some(2), TtlConfig::Infinite);
        s.insert(obj(1, 1), SimTime::ZERO);
        s.insert(obj(2, 1), SimTime::ZERO);
        s.get(ObjectId(1), SimTime::ZERO); // 2 becomes LRU.
        assert_eq!(s.insert(obj(3, 1), SimTime::ZERO), Some(ObjectId(2)));
        assert!(s.contains(ObjectId(1)));
        assert!(!s.contains(ObjectId(2)));
        assert!(s.contains(ObjectId(3)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn clear_drops_entries_and_floors() {
        let s = EpochShardedStorage::new(4, None, TtlConfig::Infinite);
        s.insert(obj(1, 1), SimTime::ZERO);
        s.invalidate(ObjectId(3), Version(5));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.footprint_bytes(), 0);
        // The floor for object 3 is gone (post-clear fetches are fresh).
        s.insert(obj(3, 2), SimTime::ZERO);
        assert_eq!(s.cached_version(ObjectId(3)), Some(Version(2)));
        // Reclamation actually ran (flush happens on unpin-to-zero).
        assert!(s.epoch_stats().deferred > 0);
    }

    #[test]
    fn concurrent_mixed_load_is_safe_and_capacity_bounded() {
        let s = Arc::new(EpochShardedStorage::new(16, Some(64), TtlConfig::Infinite));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let id = (t * 31 + i) % 128;
                        match i % 4 {
                            0 => {
                                s.insert(obj(id, i + 1), SimTime::ZERO);
                            }
                            1 => {
                                if let Some(e) = s.get(ObjectId(id), SimTime::ZERO) {
                                    assert_eq!(e.id, ObjectId(id));
                                }
                            }
                            2 => {
                                s.invalidate(ObjectId(id), Version(i));
                            }
                            _ => {
                                s.remove(ObjectId(id));
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(s.len() <= 64, "per-stripe capacity must bound the total");
        let stats = s.epoch_stats();
        assert!(stats.reclaimed > 0, "retired entries must be reclaimed");
    }
}
