//! Per-transaction read records kept by the cache.
//!
//! "To implement this interface, the cache maintains a record of each
//! transaction with its read values, their versions, and their dependency
//! lists" (§III-B). The record is garbage-collected when the client flags
//! the last operation of the transaction.

use std::collections::HashMap;
use tcache_types::{DependencyList, ObjectId, ReadRecord, ReadSet, TxnId, Version};

/// The table of in-progress read-only transactions at one cache server.
#[derive(Debug, Default)]
pub struct TransactionTable {
    records: HashMap<TxnId, ReadSet>,
}

impl TransactionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        TransactionTable::default()
    }

    /// Number of transactions currently tracked.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no transaction is tracked.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Returns the read set recorded so far for `txn` (empty if the
    /// transaction has not been seen yet).
    pub fn read_set(&self, txn: TxnId) -> Option<&ReadSet> {
        self.records.get(&txn)
    }

    /// Records a completed read for `txn`.
    pub fn record_read(
        &mut self,
        txn: TxnId,
        object: ObjectId,
        version: Version,
        dependencies: DependencyList,
    ) {
        self.records
            .entry(txn)
            .or_default()
            .push(ReadRecord::new(object, version, dependencies));
    }

    /// Removes and returns the record for `txn` (used on `last_op` and on
    /// abort). Subsequent reads with the same id start a fresh transaction.
    pub fn finish(&mut self, txn: TxnId) -> Option<ReadSet> {
        self.records.remove(&txn)
    }

    /// The `(object, version)` pairs observed so far by `txn`, in read
    /// order; used to report the transaction to the consistency monitor.
    pub fn observed(&self, txn: TxnId) -> Vec<(ObjectId, Version)> {
        self.records
            .get(&txn)
            .map(|rs| rs.iter().map(|r| (r.object, r.version)).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_finish() {
        let mut t = TransactionTable::new();
        assert!(t.is_empty());
        t.record_read(TxnId(1), ObjectId(1), Version(1), DependencyList::bounded(3));
        t.record_read(TxnId(1), ObjectId(2), Version(2), DependencyList::bounded(3));
        t.record_read(TxnId(2), ObjectId(3), Version(3), DependencyList::bounded(3));
        assert_eq!(t.len(), 2);
        assert_eq!(t.read_set(TxnId(1)).unwrap().len(), 2);
        assert_eq!(
            t.observed(TxnId(1)),
            vec![(ObjectId(1), Version(1)), (ObjectId(2), Version(2))]
        );
        let rs = t.finish(TxnId(1)).unwrap();
        assert_eq!(rs.len(), 2);
        assert!(t.read_set(TxnId(1)).is_none());
        assert!(t.finish(TxnId(1)).is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn finished_transaction_id_starts_fresh() {
        let mut t = TransactionTable::new();
        t.record_read(TxnId(1), ObjectId(1), Version(1), DependencyList::bounded(3));
        t.finish(TxnId(1));
        t.record_read(TxnId(1), ObjectId(9), Version(9), DependencyList::bounded(3));
        let rs = t.read_set(TxnId(1)).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.reads()[0].object, ObjectId(9));
    }

    #[test]
    fn observed_for_unknown_transaction_is_empty() {
        let t = TransactionTable::new();
        assert!(t.observed(TxnId(5)).is_empty());
        assert!(t.read_set(TxnId(5)).is_none());
    }
}
