//! Per-transaction read records kept by the cache.
//!
//! "To implement this interface, the cache maintains a record of each
//! transaction with its read values, their versions, and their dependency
//! lists" (§III-B). The record is garbage-collected when the client flags
//! the last operation of the transaction.
//!
//! Beyond the plain read list, each [`TxnRecord`] maintains two incremental
//! indexes that are updated as reads are recorded:
//!
//! * `expected` — for every object, the **largest** version any previous
//!   read requires it to be at (the union of observed `(key, version)`
//!   pairs and every dependency-list entry seen so far);
//! * `observed_floor` — for every object the transaction returned to the
//!   client, the **smallest** version it observed.
//!
//! With these, checking a new read against the whole transaction
//! ([`TxnRecord::check_read`]) costs O(|depList| of the current read)
//! instead of the former O(read-set × deps) rescan, while reporting exactly
//! the same violations (the maps are precisely the maxima/minima the
//! predicate scan of [`crate::consistency::check_read`] reduces to).
//!
//! [`TransactionTable`] is the single-threaded table; [`ShardedTransactionTable`]
//! stripes it by `TxnId` hash so transactions from different clients never
//! contend on one lock.

use crate::consistency::{pick_worse, Violation, ViolationKind};
use crate::stripe::Striped;
use smallvec::SmallVec;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tcache_types::{DependencyList, ObjectId, ReadRecord, ReadSet, TxnId, Version};

/// The record of one in-progress read-only transaction.
#[derive(Debug, Default)]
pub struct TxnRecord {
    /// Every read in order (reported to the monitor, kept for diagnostics).
    reads: ReadSet,
    /// Max version each object is expected at, per previous reads'
    /// observations and dependency lists.
    expected: HashMap<ObjectId, Version>,
    /// Min version actually observed per object already returned.
    observed_floor: HashMap<ObjectId, Version>,
}

impl TxnRecord {
    /// The reads recorded so far, in order.
    pub fn read_set(&self) -> &ReadSet {
        &self.reads
    }

    /// Checks a prospective read of `key` at `version` carrying `deps`
    /// against everything this transaction has already observed, in
    /// O(|deps|). Returns the same verdict as running
    /// [`crate::consistency::check_read`] over the full read set:
    /// Equation 2 (current read stale) takes precedence, and among multiple
    /// candidates the one with the largest version gap is reported.
    pub fn check_read(
        &self,
        key: ObjectId,
        version: Version,
        deps: &DependencyList,
    ) -> Option<Violation> {
        // Equation 2: some earlier read expects `key` at a newer version.
        // `expected` holds the max requirement, which is exactly the
        // worst-gap candidate the full scan would report.
        if let Some(&required) = self.expected.get(&key) {
            if required > version {
                return Some(Violation {
                    violating_object: key,
                    observed_version: version,
                    expected_version: required,
                    kind: ViolationKind::CurrentReadStale,
                });
            }
        }

        // Equation 1: the current read's expectations show that an object
        // already returned to the client is stale. Candidates come from the
        // current dependency list and — for a re-read — the current version
        // itself; `observed_floor` holds the min observed version, which
        // maximises the gap per object.
        let mut worst: Option<Violation> = None;
        if let Some(&floor) = self.observed_floor.get(&key) {
            if version > floor {
                worst = pick_worse(
                    worst,
                    Violation {
                        violating_object: key,
                        observed_version: floor,
                        expected_version: version,
                        kind: ViolationKind::PreviousReadStale,
                    },
                );
            }
        }
        for entry in deps.iter() {
            if entry.object == key {
                // An entry never depends on itself; the re-read case above
                // already covers `key`.
                continue;
            }
            if let Some(&floor) = self.observed_floor.get(&entry.object) {
                if entry.version > floor {
                    worst = pick_worse(
                        worst,
                        Violation {
                            violating_object: entry.object,
                            observed_version: floor,
                            expected_version: entry.version,
                            kind: ViolationKind::PreviousReadStale,
                        },
                    );
                }
            }
        }
        worst
    }

    /// Records a completed read, updating the incremental indexes.
    pub fn record_read(
        &mut self,
        object: ObjectId,
        version: Version,
        dependencies: Arc<DependencyList>,
    ) {
        // The observed pair itself is an expectation for later reads…
        raise(&mut self.expected, object, version);
        // …and so is every entry of its dependency list.
        for entry in dependencies.iter() {
            raise(&mut self.expected, entry.object, entry.version);
        }
        lower(&mut self.observed_floor, object, version);
        self.reads.push(ReadRecord::new(object, version, dependencies));
    }
}

/// Inline capacity for the fast-path observed list and floor map: a txn
/// with at most this many reads never heap-allocates either.
const FAST_READS_INLINE: usize = 8;
/// Inline capacity for the fast-path expectation map. Expectations come
/// from reads *and* their dependency entries, so this is sized larger.
const FAST_EXPECTED_INLINE: usize = 16;

/// A stack- (or thread-local-) resident record for a **single-shot**
/// read-only transaction, mirroring [`TxnRecord`] verdict-for-verdict.
///
/// The classic path materialises a [`TxnRecord`] inside the sharded
/// [`TransactionTable`] — a hash-map insert, two hash maps of index
/// state, and an `Arc<DependencyList>` clone per read. None of that is
/// needed when the whole transaction arrives as one client call: the
/// record can live on the caller's stack, the maps can be inline
/// small-vectors with linear scans (read sets are small — the common case
/// is ≤ `FAST_READS_INLINE` = 8 reads), and dependency lists can be
/// *borrowed* under the storage entry guard instead of cloned.
///
/// Verdict equivalence with [`TxnRecord::check_read`] is pinned by the
/// `fast_record_matches_table_record` proptest below.
#[derive(Debug, Default)]
pub struct FastTxnRecord {
    /// `(object, version)` pairs in read order (reported to the monitor).
    observed: SmallVec<[(ObjectId, Version); FAST_READS_INLINE]>,
    /// Max version each object is expected at (reads ∪ dependency
    /// entries) — the linear-scan analogue of [`TxnRecord`]'s `expected`.
    expected: SmallVec<[(ObjectId, Version); FAST_EXPECTED_INLINE]>,
    /// Min version actually observed per object already returned.
    observed_floor: SmallVec<[(ObjectId, Version); FAST_READS_INLINE]>,
}

impl FastTxnRecord {
    /// Creates an empty record.
    pub fn new() -> Self {
        FastTxnRecord::default()
    }

    /// Resets the record for reuse. Spilled heap capacity (from a rare
    /// oversized transaction) is kept, so a thread-local scratch record
    /// stops allocating once warmed.
    pub fn clear(&mut self) {
        self.observed.clear();
        self.expected.clear();
        self.observed_floor.clear();
    }

    /// Number of reads recorded so far.
    pub fn len(&self) -> usize {
        self.observed.len()
    }

    /// Returns `true` if no read has been recorded.
    pub fn is_empty(&self) -> bool {
        self.observed.is_empty()
    }

    /// The `(object, version)` pairs observed so far, in read order.
    pub fn observed(&self) -> &[(ObjectId, Version)] {
        &self.observed
    }

    /// Checks a prospective read exactly as [`TxnRecord::check_read`]
    /// does: Equation 2 first (against the max expectation), then the
    /// worst-gap Equation 1 candidate over the current read's dependency
    /// list (against the min observed floors).
    // lint: hot-path
    pub fn check_read(
        &self,
        key: ObjectId,
        version: Version,
        deps: &DependencyList,
    ) -> Option<Violation> {
        if let Some(required) = assoc_get(&self.expected, key) {
            if required > version {
                return Some(Violation {
                    violating_object: key,
                    observed_version: version,
                    expected_version: required,
                    kind: ViolationKind::CurrentReadStale,
                });
            }
        }

        let mut worst: Option<Violation> = None;
        if let Some(floor) = assoc_get(&self.observed_floor, key) {
            if version > floor {
                worst = pick_worse(
                    worst,
                    Violation {
                        violating_object: key,
                        observed_version: floor,
                        expected_version: version,
                        kind: ViolationKind::PreviousReadStale,
                    },
                );
            }
        }
        for entry in deps.iter() {
            if entry.object == key {
                continue;
            }
            if let Some(floor) = assoc_get(&self.observed_floor, entry.object) {
                if entry.version > floor {
                    worst = pick_worse(
                        worst,
                        Violation {
                            violating_object: entry.object,
                            observed_version: floor,
                            expected_version: entry.version,
                            kind: ViolationKind::PreviousReadStale,
                        },
                    );
                }
            }
        }
        worst
    }

    /// Records a completed read, updating the inline indexes. The
    /// dependency list is only borrowed — no `Arc` clone.
    // lint: hot-path
    pub fn record_read(&mut self, object: ObjectId, version: Version, deps: &DependencyList) {
        raise_inline(&mut self.expected, object, version);
        for entry in deps.iter() {
            raise_inline(&mut self.expected, entry.object, entry.version);
        }
        lower_inline(&mut self.observed_floor, object, version);
        self.observed.push((object, version));
    }
}

#[inline]
fn assoc_get(map: &[(ObjectId, Version)], key: ObjectId) -> Option<Version> {
    map.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v)
}

#[inline]
fn raise_inline<A>(map: &mut SmallVec<A>, object: ObjectId, version: Version)
where
    A: smallvec::Array<Item = (ObjectId, Version)>,
{
    for (k, v) in map.iter_mut() {
        if *k == object {
            if version > *v {
                *v = version;
            }
            return;
        }
    }
    map.push((object, version));
}

#[inline]
fn lower_inline<A>(map: &mut SmallVec<A>, object: ObjectId, version: Version)
where
    A: smallvec::Array<Item = (ObjectId, Version)>,
{
    for (k, v) in map.iter_mut() {
        if *k == object {
            if version < *v {
                *v = version;
            }
            return;
        }
    }
    map.push((object, version));
}

fn raise(map: &mut HashMap<ObjectId, Version>, object: ObjectId, version: Version) {
    map.entry(object)
        .and_modify(|v| *v = (*v).max(version))
        .or_insert(version);
}

fn lower(map: &mut HashMap<ObjectId, Version>, object: ObjectId, version: Version) {
    map.entry(object)
        .and_modify(|v| {
            if version < *v {
                *v = version;
            }
        })
        .or_insert(version);
}

/// The table of in-progress read-only transactions at one cache server
/// (single stripe; see [`ShardedTransactionTable`] for the concurrent
/// wrapper).
#[derive(Debug, Default)]
pub struct TransactionTable {
    records: HashMap<TxnId, TxnRecord>,
}

impl TransactionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        TransactionTable::default()
    }

    /// Number of transactions currently tracked.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no transaction is tracked.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Returns the read set recorded so far for `txn` (`None` if the
    /// transaction has not been seen yet).
    pub fn read_set(&self, txn: TxnId) -> Option<&ReadSet> {
        self.records.get(&txn).map(TxnRecord::read_set)
    }

    /// Returns the full record for `txn`, if any.
    pub fn record(&self, txn: TxnId) -> Option<&TxnRecord> {
        self.records.get(&txn)
    }

    /// Checks a prospective read for `txn` against its previous reads in
    /// O(|deps|); a transaction with no record passes trivially.
    pub fn check_read(
        &self,
        txn: TxnId,
        key: ObjectId,
        version: Version,
        deps: &DependencyList,
    ) -> Option<Violation> {
        self.records
            .get(&txn)
            .and_then(|r| r.check_read(key, version, deps))
    }

    /// Records a completed read for `txn`. Returns `true` when this read
    /// **created** the record (the transaction was promoted into the
    /// table), `false` when it extended an existing one — callers use this
    /// to maintain the open-record hint on [`ShardedTransactionTable`].
    pub fn record_read(
        &mut self,
        txn: TxnId,
        object: ObjectId,
        version: Version,
        dependencies: impl Into<Arc<DependencyList>>,
    ) -> bool {
        match self.records.entry(txn) {
            Entry::Occupied(mut e) => {
                e.get_mut().record_read(object, version, dependencies.into());
                false
            }
            Entry::Vacant(e) => {
                e.insert(TxnRecord::default())
                    .record_read(object, version, dependencies.into());
                true
            }
        }
    }

    /// Removes and returns the read set for `txn` (used on `last_op` and on
    /// abort). Subsequent reads with the same id start a fresh transaction.
    pub fn finish(&mut self, txn: TxnId) -> Option<ReadSet> {
        self.records.remove(&txn).map(|r| r.reads)
    }

    /// The `(object, version)` pairs observed so far by `txn`, in read
    /// order; used to report the transaction to the consistency monitor.
    pub fn observed(&self, txn: TxnId) -> Vec<(ObjectId, Version)> {
        self.records
            .get(&txn)
            .map(|r| r.reads.iter().map(|rec| (rec.object, rec.version)).collect())
            .unwrap_or_default()
    }
}

/// Number of stripes used by [`ShardedTransactionTable::with_default_stripes`].
pub const DEFAULT_TXN_STRIPES: usize = 16;

/// A transaction table striped by `TxnId` hash, each stripe behind its own
/// lock, so concurrent clients (distinct transaction ids) never serialize
/// on a single table lock.
#[derive(Debug)]
pub struct ShardedTransactionTable {
    stripes: Striped<TransactionTable>,
    /// Open-record hint maintained by the cache around its stripe
    /// accesses (see [`ShardedTransactionTable::note_record_created`]).
    /// Zero means "no multi-call transaction is in progress anywhere",
    /// which is what lets the single-shot fast path skip the table
    /// entirely: a record for a fast-path txn id could only have been
    /// left by a *previous sequential call of the same client*, and that
    /// call bumps this counter before returning.
    open_hint: AtomicUsize,
}

impl Default for ShardedTransactionTable {
    fn default() -> Self {
        ShardedTransactionTable::with_default_stripes()
    }
}

impl ShardedTransactionTable {
    /// Creates a table with [`DEFAULT_TXN_STRIPES`] stripes.
    pub fn with_default_stripes() -> Self {
        ShardedTransactionTable::new(DEFAULT_TXN_STRIPES)
    }

    /// Creates a table with `stripes` stripes (rounded up to a power of
    /// two).
    ///
    /// # Panics
    /// Panics if `stripes` is zero.
    pub fn new(stripes: usize) -> Self {
        ShardedTransactionTable {
            stripes: Striped::new(stripes, TransactionTable::new),
            open_hint: AtomicUsize::new(0),
        }
    }

    /// Notes that a stripe access created a new [`TxnRecord`] (a
    /// transaction was promoted into the table). Called by the cache
    /// *after* releasing the stripe lock; within one client this is
    /// sequenced before any later call, which is all the fast-path gate
    /// needs (see `open_hint`).
    pub fn note_record_created(&self) {
        self.open_hint.fetch_add(1, Ordering::Release);
    }

    /// Notes that a previously created record was finished (last-op or
    /// abort). Pairs with [`ShardedTransactionTable::note_record_created`].
    pub fn note_record_finished(&self) {
        self.open_hint.fetch_sub(1, Ordering::Release);
    }

    /// The current open-record hint. Zero is a sound "table is quiet"
    /// signal for the single-shot fast path; non-zero merely routes
    /// transactions through the classic table path.
    pub fn open_records_hint(&self) -> usize {
        self.open_hint.load(Ordering::Acquire)
    }

    /// The stripe responsible for `txn`. Callers lock it for the duration
    /// of a check-and-record sequence so the two are atomic per
    /// transaction.
    pub fn stripe(&self, txn: TxnId) -> &parking_lot::Mutex<TransactionTable> {
        self.stripes.stripe_for(txn.as_u64())
    }

    /// Total number of transactions tracked across all stripes.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len()).sum()
    }

    /// Returns `true` if no stripe tracks any transaction.
    pub fn is_empty(&self) -> bool {
        self.stripes.iter().all(|s| s.lock().is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_finish() {
        let mut t = TransactionTable::new();
        assert!(t.is_empty());
        t.record_read(TxnId(1), ObjectId(1), Version(1), DependencyList::bounded(3));
        t.record_read(TxnId(1), ObjectId(2), Version(2), DependencyList::bounded(3));
        t.record_read(TxnId(2), ObjectId(3), Version(3), DependencyList::bounded(3));
        assert_eq!(t.len(), 2);
        assert_eq!(t.read_set(TxnId(1)).unwrap().len(), 2);
        assert_eq!(
            t.observed(TxnId(1)),
            vec![(ObjectId(1), Version(1)), (ObjectId(2), Version(2))]
        );
        let rs = t.finish(TxnId(1)).unwrap();
        assert_eq!(rs.len(), 2);
        assert!(t.read_set(TxnId(1)).is_none());
        assert!(t.finish(TxnId(1)).is_none());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn finished_transaction_id_starts_fresh() {
        let mut t = TransactionTable::new();
        t.record_read(TxnId(1), ObjectId(1), Version(1), DependencyList::bounded(3));
        t.finish(TxnId(1));
        t.record_read(TxnId(1), ObjectId(9), Version(9), DependencyList::bounded(3));
        let rs = t.read_set(TxnId(1)).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.reads()[0].object, ObjectId(9));
    }

    #[test]
    fn observed_for_unknown_transaction_is_empty() {
        let t = TransactionTable::new();
        assert!(t.observed(TxnId(5)).is_empty());
        assert!(t.read_set(TxnId(5)).is_none());
        assert!(t.record(TxnId(5)).is_none());
    }

    #[test]
    fn incremental_check_flags_stale_current_read() {
        let mut t = TransactionTable::new();
        let mut deps = DependencyList::bounded(3);
        deps.record(ObjectId(2), Version(4));
        // Read o1@5 whose deps expect o2 at >= 4.
        t.record_read(TxnId(1), ObjectId(1), Version(5), deps);
        let empty = DependencyList::bounded(0);
        let v = t
            .check_read(TxnId(1), ObjectId(2), Version(2), &empty)
            .expect("stale current read detected");
        assert_eq!(v.kind, ViolationKind::CurrentReadStale);
        assert_eq!(v.violating_object, ObjectId(2));
        assert_eq!(v.expected_version, Version(4));
        assert_eq!(v.observed_version, Version(2));
        // A fresh-enough read passes.
        assert!(t.check_read(TxnId(1), ObjectId(2), Version(4), &empty).is_none());
        // Unknown transactions pass trivially.
        assert!(t.check_read(TxnId(9), ObjectId(2), Version(0), &empty).is_none());
    }

    #[test]
    fn incremental_check_flags_stale_previous_read() {
        let mut t = TransactionTable::new();
        t.record_read(TxnId(1), ObjectId(2), Version(2), DependencyList::bounded(0));
        let mut deps = DependencyList::bounded(3);
        deps.record(ObjectId(2), Version(4));
        let v = t
            .check_read(TxnId(1), ObjectId(1), Version(5), &deps)
            .expect("stale previous read detected");
        assert_eq!(v.kind, ViolationKind::PreviousReadStale);
        assert_eq!(v.violating_object, ObjectId(2));
        assert_eq!(v.observed_version, Version(2));
        assert_eq!(v.expected_version, Version(4));
    }

    #[test]
    fn sharded_table_routes_by_transaction() {
        let t = ShardedTransactionTable::new(4);
        assert!(t.is_empty());
        for i in 0..40u64 {
            t.stripe(TxnId(i)).lock().record_read(
                TxnId(i),
                ObjectId(i),
                Version(1),
                DependencyList::bounded(0),
            );
        }
        assert_eq!(t.len(), 40);
        assert_eq!(
            t.stripe(TxnId(7)).lock().observed(TxnId(7)),
            vec![(ObjectId(7), Version(1))]
        );
        t.stripe(TxnId(7)).lock().finish(TxnId(7));
        assert_eq!(t.len(), 39);
    }
}

#[cfg(test)]
mod equivalence_proptests {
    //! The incremental O(deps) check must agree with the full predicate
    //! scan of [`crate::consistency::check_read`] on detection verdicts.

    use super::*;
    use crate::consistency::check_read as full_check;
    use proptest::prelude::*;

    fn deplist(pairs: &[(u64, u64)]) -> DependencyList {
        let mut d = DependencyList::unbounded();
        for &(k, v) in pairs {
            d.record(ObjectId(k), Version(v));
        }
        d
    }

    proptest! {
        /// For random transactions, the incremental check and the full scan
        /// agree on whether a violation exists, on the violating object's
        /// staleness kind, and on the reported gap.
        #[test]
        fn incremental_check_matches_full_scan(
            reads in prop::collection::vec(
                ((0u64..8, 0u64..12), prop::collection::vec((0u64..8, 0u64..12), 0..4)),
                0..6,
            ),
            key in 0u64..8,
            ver in 0u64..12,
            cur_deps in prop::collection::vec((0u64..8, 0u64..12), 0..4),
        ) {
            let mut record = TxnRecord::default();
            let mut read_set = tcache_types::ReadSet::new();
            for ((k, v), deps) in reads {
                let deps = deplist(&deps);
                read_set.push(tcache_types::ReadRecord::new(
                    ObjectId(k), Version(v), deps.clone(),
                ));
                record.record_read(ObjectId(k), Version(v), Arc::new(deps));
            }
            // The dependency list of a real entry never contains the entry
            // itself; mirror that invariant here.
            let cur_deps: Vec<(u64, u64)> =
                cur_deps.into_iter().filter(|&(k, _)| k != key).collect();
            let deps = deplist(&cur_deps);

            let fast = record.check_read(ObjectId(key), Version(ver), &deps);
            let slow = full_check(&read_set, ObjectId(key), Version(ver), &deps);
            match (fast, slow) {
                (None, None) => {}
                (Some(f), Some(s)) => {
                    prop_assert_eq!(f.kind, s.kind);
                    prop_assert_eq!(f.expected_version, s.expected_version);
                    prop_assert_eq!(f.observed_version, s.observed_version);
                    // For CurrentReadStale the violator is `key` in both; for
                    // PreviousReadStale both report a worst-gap object, and
                    // the gap is what matters for strategy decisions.
                }
                (f, s) => prop_assert!(false, "verdicts differ: fast {f:?} vs slow {s:?}"),
            }
        }

        /// The stack-resident [`FastTxnRecord`] must agree with the
        /// table-resident [`TxnRecord`] *exactly* — same verdict, same
        /// violating object, same kind, same gap — on every prospective
        /// read, for random transaction histories. This is what licenses
        /// the single-shot fast path to bypass the transaction table.
        #[test]
        fn fast_record_matches_table_record(
            reads in prop::collection::vec(
                ((0u64..8, 0u64..12), prop::collection::vec((0u64..8, 0u64..12), 0..4)),
                0..6,
            ),
            key in 0u64..8,
            ver in 0u64..12,
            cur_deps in prop::collection::vec((0u64..8, 0u64..12), 0..4),
        ) {
            let mut table_rec = TxnRecord::default();
            let mut fast_rec = FastTxnRecord::new();
            for ((k, v), deps) in reads {
                let deps = deplist(&deps);
                fast_rec.record_read(ObjectId(k), Version(v), &deps);
                table_rec.record_read(ObjectId(k), Version(v), Arc::new(deps));
            }
            let cur_deps: Vec<(u64, u64)> =
                cur_deps.into_iter().filter(|&(k, _)| k != key).collect();
            let deps = deplist(&cur_deps);

            let fast = fast_rec.check_read(ObjectId(key), Version(ver), &deps);
            let table = table_rec.check_read(ObjectId(key), Version(ver), &deps);
            match (fast, table) {
                (None, None) => {}
                (Some(f), Some(t)) => {
                    prop_assert_eq!(f.kind, t.kind);
                    prop_assert_eq!(f.violating_object, t.violating_object);
                    prop_assert_eq!(f.expected_version, t.expected_version);
                    prop_assert_eq!(f.observed_version, t.observed_version);
                }
                (f, t) => prop_assert!(false, "verdicts differ: fast {f:?} vs table {t:?}"),
            }
            // The observed lists (what the monitor sees) match too.
            let table_observed: Vec<(ObjectId, Version)> = table_rec
                .read_set()
                .iter()
                .map(|r| (r.object, r.version))
                .collect();
            prop_assert_eq!(fast_rec.observed(), table_observed.as_slice());
        }
    }
}
