//! The lock-striping primitive shared by the cache's concurrent
//! structures.
//!
//! [`Striped<T>`] holds N independently locked copies of `T` (N rounded up
//! to a power of two) and routes a `u64` key to one of them with Fibonacci
//! hashing. [`crate::storage::ShardedCacheStorage`] stripes by `ObjectId`
//! and [`crate::txn_record::ShardedTransactionTable`] by `TxnId`; keeping
//! the selection logic in one place guarantees the two can never drift
//! apart.

use parking_lot::Mutex;

/// N independently locked stripes of `T`, selected by key hash.
#[derive(Debug)]
pub struct Striped<T> {
    stripes: Box<[Mutex<T>]>,
    mask: u64,
}

impl<T> Striped<T> {
    /// Creates `stripes` stripes (rounded up to a power of two), each
    /// initialised by `init`.
    ///
    /// # Panics
    /// Panics if `stripes` is zero.
    pub fn new(stripes: usize, mut init: impl FnMut() -> T) -> Self {
        assert!(stripes > 0, "need at least one stripe");
        let stripes = stripes.next_power_of_two();
        let stripes: Vec<Mutex<T>> = (0..stripes).map(|_| Mutex::new(init())).collect();
        Striped {
            mask: stripes.len() as u64 - 1,
            stripes: stripes.into_boxed_slice(),
        }
    }

    /// Number of stripes.
    pub fn len(&self) -> usize {
        self.stripes.len()
    }

    /// Returns `true` if there are no stripes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.stripes.is_empty()
    }

    /// The stripe responsible for `key`. Fibonacci hashing spreads the
    /// dense ids the workloads use evenly across stripes.
    pub fn stripe_for(&self, key: u64) -> &Mutex<T> {
        &self.stripes[self.index_for(key)]
    }

    /// The stripe *index* `key` routes to (diagnostics and budget
    /// rebalancing; same hash as [`Striped::stripe_for`]).
    pub fn index_for(&self, key: u64) -> usize {
        let h = key.wrapping_mul(0x9E3779B97F4A7C15) >> 32;
        (h & self.mask) as usize
    }

    /// The stripe at `index` (budget rebalancing; panics if out of range).
    pub fn stripe_at(&self, index: usize) -> &Mutex<T> {
        &self.stripes[index]
    }

    /// Iterates over all stripes (for aggregate queries; callers lock one
    /// stripe at a time).
    pub fn iter(&self) -> impl Iterator<Item = &Mutex<T>> {
        self.stripes.iter()
    }

    /// Iterates mutably over all stripes (construction-time configuration;
    /// `&mut self` proves no lock is needed).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Mutex<T>> {
        self.stripes.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_to_power_of_two_and_routes_stably() {
        let s: Striped<u32> = Striped::new(10, || 0);
        assert_eq!(s.len(), 16);
        assert!(!s.is_empty());
        for key in 0..1000u64 {
            let a = s.stripe_for(key) as *const _;
            let b = s.stripe_for(key) as *const _;
            assert_eq!(a, b, "routing must be stable");
        }
    }

    #[test]
    fn dense_keys_spread_over_all_stripes() {
        let s: Striped<u32> = Striped::new(8, || 0);
        for key in 0..1000u64 {
            *s.stripe_for(key).lock() += 1;
        }
        for stripe in s.iter() {
            let count = *stripe.lock();
            assert!(count > 0, "every stripe should receive some dense keys");
        }
    }

    #[test]
    #[should_panic(expected = "at least one stripe")]
    fn zero_stripes_panics() {
        let _: Striped<u32> = Striped::new(0, || 0);
    }
}
