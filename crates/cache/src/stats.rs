//! Cache-side statistics: hit ratio, aborts, database load generated.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counters describing one cache server's behaviour.
#[derive(Debug, Default)]
pub struct CacheStats {
    reads: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    retries: AtomicU64,
    invalidations_applied: AtomicU64,
    invalidations_ignored: AtomicU64,
    evictions: AtomicU64,
    txns_committed: AtomicU64,
    txns_aborted: AtomicU64,
    fastpath_txns: AtomicU64,
    promoted_txns: AtomicU64,
}

/// A point-in-time copy of [`CacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStatsSnapshot {
    /// Client read operations served (hits + misses, excluding retries).
    pub reads: u64,
    /// Reads served from the cache without contacting the database.
    pub hits: u64,
    /// Reads that had to fetch the object from the database.
    pub misses: u64,
    /// Additional database fetches triggered by the RETRY strategy.
    pub retries: u64,
    /// Invalidations that evicted a cached entry.
    pub invalidations_applied: u64,
    /// Invalidations ignored (object absent or already newer).
    pub invalidations_ignored: u64,
    /// Entries evicted by the EVICT / RETRY strategies.
    pub evictions: u64,
    /// Read-only transactions that completed all their reads.
    pub txns_committed: u64,
    /// Read-only transactions aborted after an inconsistency was detected.
    pub txns_aborted: u64,
    /// Single-shot read-only transactions served by the allocation-free
    /// fast path (no transaction-table traffic).
    pub fastpath_txns: u64,
    /// Transactions promoted into the sharded transaction table (a record
    /// was created because the transaction spans multiple client calls or
    /// the fast path was ineligible).
    pub promoted_txns: u64,
}

impl CacheStatsSnapshot {
    /// Fraction of reads served without contacting the database
    /// (1.0 when no reads have been issued).
    pub fn hit_ratio(&self) -> f64 {
        if self.reads == 0 {
            1.0
        } else {
            self.hits as f64 / self.reads as f64
        }
    }

    /// Total load this cache placed on the database (misses plus
    /// read-through retries).
    pub fn db_reads(&self) -> u64 {
        self.misses + self.retries
    }

    /// Fraction of completed transactions that were aborted.
    pub fn abort_ratio(&self) -> f64 {
        let total = self.txns_committed + self.txns_aborted;
        if total == 0 {
            0.0
        } else {
            self.txns_aborted as f64 / total as f64
        }
    }

    /// Accumulates another cache's counters into this one (used to build
    /// the aggregate view over a multi-cache deployment).
    pub fn merge(&mut self, other: CacheStatsSnapshot) {
        self.reads += other.reads;
        self.hits += other.hits;
        self.misses += other.misses;
        self.retries += other.retries;
        self.invalidations_applied += other.invalidations_applied;
        self.invalidations_ignored += other.invalidations_ignored;
        self.evictions += other.evictions;
        self.txns_committed += other.txns_committed;
        self.txns_aborted += other.txns_aborted;
        self.fastpath_txns += other.fastpath_txns;
        self.promoted_txns += other.promoted_txns;
    }

    /// Fraction of completed transactions that went through the sharded
    /// transaction table instead of the single-shot fast path (0.0 when no
    /// transaction completed).
    pub fn promotion_rate(&self) -> f64 {
        let total = self.fastpath_txns + self.promoted_txns;
        if total == 0 {
            0.0
        } else {
            self.promoted_txns as f64 / total as f64
        }
    }
}

impl CacheStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        CacheStats::default()
    }

    /// Records a read served from the cache.
    pub fn record_hit(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a read that required a database fetch.
    pub fn record_miss(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a read-through performed by the RETRY strategy.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an invalidation that evicted an entry.
    pub fn record_invalidation_applied(&self) {
        self.invalidations_applied.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an invalidation that had no effect.
    pub fn record_invalidation_ignored(&self) {
        self.invalidations_ignored.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a strategy-driven eviction.
    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a committed read-only transaction.
    pub fn record_commit(&self) {
        self.txns_committed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an aborted read-only transaction.
    pub fn record_abort(&self) {
        self.txns_aborted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a transaction served by the single-shot fast path.
    pub fn record_fastpath_txn(&self) {
        self.fastpath_txns.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a transaction promoted into the transaction table.
    pub fn record_promoted_txn(&self) {
        self.promoted_txns.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            invalidations_applied: self.invalidations_applied.load(Ordering::Relaxed),
            invalidations_ignored: self.invalidations_ignored.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            txns_committed: self.txns_committed.load(Ordering::Relaxed),
            txns_aborted: self.txns_aborted.load(Ordering::Relaxed),
            fastpath_txns: self.fastpath_txns.load(Ordering::Relaxed),
            promoted_txns: self.promoted_txns.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_ratios() {
        let s = CacheStats::new();
        for _ in 0..3 {
            s.record_hit();
        }
        s.record_miss();
        s.record_retry();
        s.record_invalidation_applied();
        s.record_invalidation_ignored();
        s.record_eviction();
        s.record_commit();
        s.record_commit();
        s.record_abort();
        let snap = s.snapshot();
        assert_eq!(snap.reads, 4);
        assert_eq!(snap.hits, 3);
        assert_eq!(snap.misses, 1);
        assert!((snap.hit_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(snap.db_reads(), 2);
        assert!((snap.abort_ratio() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(snap.invalidations_applied, 1);
        assert_eq!(snap.invalidations_ignored, 1);
        assert_eq!(snap.evictions, 1);
    }

    #[test]
    fn merge_sums_every_counter() {
        let a = CacheStatsSnapshot {
            reads: 10,
            hits: 8,
            misses: 2,
            retries: 1,
            invalidations_applied: 3,
            invalidations_ignored: 1,
            evictions: 2,
            txns_committed: 4,
            txns_aborted: 1,
            fastpath_txns: 3,
            promoted_txns: 1,
        };
        let mut total = a;
        total.merge(a);
        assert_eq!(total.reads, 20);
        assert_eq!(total.hits, 16);
        assert_eq!(total.db_reads(), 6);
        assert_eq!(total.txns_committed, 8);
        assert_eq!(total.txns_aborted, 2);
        assert_eq!(total.fastpath_txns, 6);
        assert_eq!(total.promoted_txns, 2);
        assert!((total.promotion_rate() - 0.25).abs() < 1e-9);
        assert!((total.hit_ratio() - a.hit_ratio()).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_have_defined_ratios() {
        let snap = CacheStats::new().snapshot();
        assert_eq!(snap.hit_ratio(), 1.0);
        assert_eq!(snap.abort_ratio(), 0.0);
        assert_eq!(snap.db_reads(), 0);
        assert_eq!(snap, CacheStatsSnapshot::default());
    }
}
