//! Workspace automation tasks (`cargo xtask <task>`).
//!
//! Currently one task: `lint`, a repo-specific static scan with three
//! rules sharing one brace-depth scope tracker:
//!
//! * **lock-across-send** — a lock guard held across
//!   `send`/`try_send`/publish/upcall calls, the deadlock class the
//!   `LiveSender` rework (PR 2) removed from the delivery plane: a thread
//!   blocking on a bounded channel while holding a lock that the draining
//!   thread needs is a classic distributed-cache stall, and clippy has no
//!   lint for it.
//! * **pin-across-send** — an epoch pin guard
//!   (`tcache_types::epoch::EpochDomain::pin`) held across the same
//!   calls. A pin is not a lock, but it vetoes `try_advance` globally:
//!   park on a bounded channel while pinned and reclamation stalls for
//!   every retired entry in the domain until the send unblocks — a
//!   memory-growth liveness hazard rather than a deadlock.
//! * **hot-path-alloc** — a heap allocation inside a function marked
//!   `// lint: hot-path` (the allocation-free cached-read fast path).
//!   `Vec::new`/`vec!`/`Box::new`/`format!`/`.to_vec()`/
//!   `.collect::<Vec<…>>` in such a body defeats the zero-allocation
//!   guarantee the `zero_alloc` release test pins; the lint catches the
//!   regression at review time, before the counting allocator does.
//!
//! The scan is a deliberately simple, line-based heuristic (no rustc
//! plumbing, no external deps), kept honest by a commented allowlist:
//! audited sites carry `// lint:allow lock-across-send — <why>` (or the
//! rule's own marker, e.g. `// lint:allow hot-path-alloc — <why>`) on the
//! flagged line (or the guard's binding line) and are skipped. Multi-line
//! statements can evade the scanner; it exists to catch the common shape
//! early and cheaply, not to be a soundness proof.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Marker that exempts an audited line (or its guard's binding line).
const ALLOW_MARKER: &str = "lint:allow lock-across-send";

/// Marker that exempts an audited epoch-pin site.
const PIN_ALLOW_MARKER: &str = "lint:allow pin-across-send";

/// Patterns that acquire a guard when bound with `let`.
const LOCK_PATTERNS: &[&str] = &[".lock()", ".read()", ".write()"];

/// Patterns that acquire an epoch pin when bound with `let`.
const PIN_PATTERNS: &[&str] = &[".pin()"];

/// Patterns that hand control to a channel or an upcall — the calls a
/// guard must not be held across.
const SEND_PATTERNS: &[&str] = &[".send(", ".try_send(", ".publish(", "upcall("];

/// Marker comment that arms the hot-path allocation rule for the next
/// `fn` declaration.
const HOT_PATH_MARKER: &str = "lint: hot-path";

/// Marker that exempts an audited allocation inside a hot-path function.
const HOT_ALLOW_MARKER: &str = "lint:allow hot-path-alloc";

/// Allocation shapes banned inside `// lint: hot-path` functions.
/// Identifier-leading patterns are matched on a token boundary so
/// `ObservedVec::new()` / `smallvec![…]` (the inline small-buffers the
/// fast path exists to use) do not trip the rule.
const ALLOC_PATTERNS: &[&str] = &[
    "Vec::new(",
    "vec![",
    "Box::new(",
    "format!(",
    ".to_vec()",
    ".collect::<Vec<",
];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown task `{other}`; available tasks: lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rust_files(&root.join("crates"), &mut files);
    files.sort();

    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for file in &files {
        // The support shims implement the channels themselves; their
        // internals are out of scope for a caller-side discipline lint.
        if file.components().any(|c| c.as_os_str() == "support") {
            continue;
        }
        let Ok(source) = fs::read_to_string(file) else {
            continue;
        };
        scanned += 1;
        scan_file(file, &source, &mut findings);
    }

    if findings.is_empty() {
        println!(
            "xtask lint: {scanned} files scanned, no lock guard or epoch pin held across a \
             send/upcall, no allocation in a hot-path function"
        );
        ExitCode::SUCCESS
    } else {
        for finding in &findings {
            eprintln!("{finding}");
        }
        eprintln!(
            "xtask lint: {} finding(s) in {scanned} files — hold no lock or epoch pin across \
             send/try_send/publish/upcall and allocate nothing in `// {HOT_PATH_MARKER}` \
             functions, or audit the site and annotate it with \
             `// {ALLOW_MARKER} — <reason>` (locks) / `// {PIN_ALLOW_MARKER} — <reason>` (pins) \
             / `// {HOT_ALLOW_MARKER} — <reason>` (hot-path allocations)",
            findings.len()
        );
        ExitCode::FAILURE
    }
}

/// Which rule a guard (and thus a finding) belongs to.
#[derive(Clone, Copy, PartialEq, Eq)]
enum GuardKind {
    /// A mutex/rwlock guard (`.lock()`/`.read()`/`.write()`).
    Lock,
    /// An epoch pin guard (`.pin()`).
    Pin,
}

impl GuardKind {
    fn label(self) -> &'static str {
        match self {
            GuardKind::Lock => "lock guard",
            GuardKind::Pin => "epoch pin guard",
        }
    }

    fn allow_marker(self) -> &'static str {
        match self {
            GuardKind::Lock => ALLOW_MARKER,
            GuardKind::Pin => PIN_ALLOW_MARKER,
        }
    }

    fn patterns(self) -> &'static [&'static str] {
        match self {
            GuardKind::Lock => LOCK_PATTERNS,
            GuardKind::Pin => PIN_PATTERNS,
        }
    }
}

/// One flagged site.
enum Finding {
    /// A lock/pin guard live across a send/upcall.
    GuardAcrossSend {
        file: PathBuf,
        line: usize,
        kind: GuardKind,
        guard: String,
        bound_at: usize,
        call: String,
    },
    /// A heap allocation inside a `// lint: hot-path` function.
    HotPathAlloc {
        file: PathBuf,
        line: usize,
        pattern: &'static str,
        fn_line: usize,
    },
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::GuardAcrossSend {
                file,
                line,
                kind,
                guard,
                bound_at,
                call,
            } => write!(
                f,
                "{}:{}: `{}` reached while holding {} `{}` (bound at line {})",
                file.display(),
                line,
                call,
                kind.label(),
                guard,
                bound_at
            ),
            Finding::HotPathAlloc {
                file,
                line,
                pattern,
                fn_line,
            } => write!(
                f,
                "{}:{}: `{}` allocates inside a `// {HOT_PATH_MARKER}` function \
                 (declared at line {}); hoist the allocation or annotate with \
                 `// {HOT_ALLOW_MARKER} — <reason>`",
                file.display(),
                line,
                pattern,
                fn_line
            ),
        }
    }
}

/// A live guard binding.
struct Guard {
    name: String,
    kind: GuardKind,
    depth: i32,
    line: usize,
    allowed: bool,
}

const GUARD_KINDS: [GuardKind; 2] = [GuardKind::Lock, GuardKind::Pin];

/// An active `// lint: hot-path` function body.
struct HotRegion {
    /// Brace depth at the `fn` declaration line; the body is deeper.
    entry_depth: i32,
    /// Whether the body's opening brace has been passed.
    entered: bool,
    /// Line of the `fn` declaration (for the finding message).
    fn_line: usize,
}

fn scan_file(path: &Path, source: &str, findings: &mut Vec<Finding>) {
    let mut depth: i32 = 0;
    let mut guards: Vec<Guard> = Vec::new();
    let mut in_block_comment = false;
    let mut hot_armed = false;
    let mut hot: Option<HotRegion> = None;

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let code = strip_comments(raw, &mut in_block_comment);

        // Hot-path allocation rule: banned shapes inside the marked body.
        if let Some(region) = &hot {
            if depth > region.entry_depth && !raw.contains(HOT_ALLOW_MARKER) {
                if let Some(pattern) = alloc_pattern(&code) {
                    findings.push(Finding::HotPathAlloc {
                        file: path.to_path_buf(),
                        line: line_no,
                        pattern,
                        fn_line: region.fn_line,
                    });
                }
            }
        }

        // A send while a guard is live — or a single-statement
        // acquire-then-send chain — is the shape both guard rules flag.
        if let Some(call) = SEND_PATTERNS.iter().find(|p| code.contains(**p)) {
            for kind in GUARD_KINDS {
                let allowed_here = raw.contains(kind.allow_marker());
                if allowed_here {
                    continue;
                }
                let live = guards.iter().find(|g| g.kind == kind && !g.allowed);
                let chained = kind.patterns().iter().any(|p| code.contains(*p));
                if let Some(guard) = live {
                    findings.push(Finding::GuardAcrossSend {
                        file: path.to_path_buf(),
                        line: line_no,
                        kind,
                        guard: guard.name.clone(),
                        bound_at: guard.line,
                        call: call.trim_end_matches('(').to_string(),
                    });
                } else if chained {
                    findings.push(Finding::GuardAcrossSend {
                        file: path.to_path_buf(),
                        line: line_no,
                        kind,
                        guard: "<temporary>".to_string(),
                        bound_at: line_no,
                        call: call.trim_end_matches('(').to_string(),
                    });
                }
            }
        }

        // New guard bindings: `let [mut] name = ….lock()…;` (and RwLock
        // read/write, and epoch `.pin()`). Temporaries without `let` die
        // at the statement end and are handled by the chained rule above.
        for kind in GUARD_KINDS {
            if let Some(name) = guard_binding(&code, kind) {
                guards.push(Guard {
                    name,
                    kind,
                    depth,
                    line: line_no,
                    allowed: raw.contains(kind.allow_marker()),
                });
            }
        }

        // Explicit early releases.
        if code.contains("drop(") {
            guards.retain(|g| !code.contains(&format!("drop({})", g.name)));
        }

        // Hot-path arming: the marker comment arms the rule, the next `fn`
        // declaration opens the region at the current depth.
        if raw.contains(HOT_PATH_MARKER) && !raw.contains(HOT_ALLOW_MARKER) {
            hot_armed = true;
        } else if hot_armed && code.contains("fn ") {
            hot = Some(HotRegion {
                entry_depth: depth,
                entered: false,
                fn_line: line_no,
            });
            hot_armed = false;
        }

        // Scope tracking: guards die when their block closes (depth falls
        // below what it was at the binding); the hot region ends when the
        // function body's brace closes.
        depth += brace_delta(&code);
        guards.retain(|g| depth >= g.depth);
        if let Some(region) = &mut hot {
            if depth > region.entry_depth {
                region.entered = true;
            } else if region.entered {
                hot = None;
            }
        }
    }
}

/// Returns the first banned allocation pattern on the line, matching
/// identifier-leading patterns only on a token boundary (so
/// `ObservedVec::new()` and `smallvec![…]` don't count as `Vec::new(` /
/// `vec![`).
fn alloc_pattern(code: &str) -> Option<&'static str> {
    for &pattern in ALLOC_PATTERNS {
        let needs_boundary = pattern
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphanumeric());
        let mut search_from = 0;
        while let Some(pos) = code[search_from..].find(pattern) {
            let at = search_from + pos;
            let bounded = !needs_boundary
                || code[..at]
                    .chars()
                    .next_back()
                    .is_none_or(|prev| !prev.is_ascii_alphanumeric() && prev != '_');
            if bounded {
                return Some(pattern);
            }
            search_from = at + pattern.len();
        }
    }
    None
}

/// Extracts the bound name of a guard-acquiring `let`, if this line is one.
fn guard_binding(code: &str, kind: GuardKind) -> Option<String> {
    if !kind.patterns().iter().any(|p| code.contains(*p)) {
        return None;
    }
    let let_pos = code.find("let ")?;
    let rest = code[let_pos + 4..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    // `let (a, b) = …` / `let Some(x) = …` patterns: take a stable
    // placeholder; scope tracking still works.
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || name == "_" {
        return Some("<pattern>".to_string());
    }
    // Ignore bindings that immediately release (`….lock().clone()` style
    // chains that end in a non-guard value are indistinguishable here;
    // the allowlist covers the rare false positive).
    Some(name)
}

/// Net brace depth change of a line, ignoring braces inside string and
/// char literals (best effort).
fn brace_delta(code: &str) -> i32 {
    let mut delta = 0;
    let mut in_string = false;
    let mut in_char = false;
    let mut prev_backslash = false;
    for c in code.chars() {
        match c {
            '"' if !in_char && !prev_backslash => in_string = !in_string,
            '\'' if !in_string && !prev_backslash => in_char = !in_char,
            '{' if !in_string && !in_char => delta += 1,
            '}' if !in_string && !in_char => delta -= 1,
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    delta
}

/// Removes `//` comments and tracks `/* … */` blocks across lines.
fn strip_comments(raw: &str, in_block: &mut bool) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars().peekable();
    while let Some(c) = chars.next() {
        if *in_block {
            if c == '*' && chars.peek() == Some(&'/') {
                chars.next();
                *in_block = false;
            }
            continue;
        }
        match c {
            '/' if chars.peek() == Some(&'/') => break,
            '/' if chars.peek() == Some(&'*') => {
                chars.next();
                *in_block = true;
            }
            _ => out.push(c),
        }
    }
    out
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR points at xtask/; the workspace root is its
    // parent. Fall back to the current directory for direct invocation.
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => PathBuf::from(dir).parent().map(Path::to_path_buf).unwrap_or_default(),
        Err(_) => PathBuf::from("."),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_for(source: &str) -> Vec<String> {
        let mut findings = Vec::new();
        scan_file(Path::new("test.rs"), source, &mut findings);
        findings.iter().map(|f| f.to_string()).collect()
    }

    #[test]
    fn flags_send_under_held_guard() {
        let src = "fn f() {\n    let guard = self.state.lock();\n    tx.send(1).unwrap();\n}\n";
        let found = findings_for(src);
        assert_eq!(found.len(), 1);
        assert!(found[0].contains("`.send`"));
        assert!(found[0].contains("guard"));
    }

    #[test]
    fn guard_dropped_by_scope_or_drop_is_fine() {
        let scoped = "fn f() {\n    {\n        let guard = self.state.lock();\n    }\n    tx.send(1).unwrap();\n}\n";
        assert!(findings_for(scoped).is_empty());
        let dropped = "fn f() {\n    let guard = self.state.lock();\n    drop(guard);\n    tx.send(1).unwrap();\n}\n";
        assert!(findings_for(dropped).is_empty());
    }

    #[test]
    fn flags_single_statement_lock_send_chain() {
        let src = "fn f() {\n    self.tx.lock().send(1).unwrap();\n}\n";
        let found = findings_for(src);
        assert_eq!(found.len(), 1);
        assert!(found[0].contains("<temporary>"));
    }

    #[test]
    fn allow_marker_silences_audited_sites() {
        let on_send =
            "fn f() {\n    let guard = self.state.lock();\n    tx.send(1).unwrap(); // lint:allow lock-across-send — audited\n}\n";
        assert!(findings_for(on_send).is_empty());
        let on_binding =
            "fn f() {\n    let guard = self.state.lock(); // lint:allow lock-across-send — audited\n    tx.send(1).unwrap();\n}\n";
        assert!(findings_for(on_binding).is_empty());
    }

    #[test]
    fn flags_pin_guard_across_send() {
        let src = "fn f() {\n    let guard = self.domain.pin();\n    tx.send(1).unwrap();\n}\n";
        let found = findings_for(src);
        assert_eq!(found.len(), 1);
        assert!(found[0].contains("epoch pin guard"));
        assert!(found[0].contains("`guard`"));
    }

    #[test]
    fn pin_released_before_send_is_fine() {
        let scoped =
            "fn f() {\n    {\n        let guard = self.domain.pin();\n    }\n    tx.send(1).unwrap();\n}\n";
        assert!(findings_for(scoped).is_empty());
        let dropped =
            "fn f() {\n    let guard = self.domain.pin();\n    drop(guard);\n    tx.send(1).unwrap();\n}\n";
        assert!(findings_for(dropped).is_empty());
    }

    #[test]
    fn pin_allow_marker_is_rule_specific() {
        let audited =
            "fn f() {\n    let guard = self.domain.pin();\n    tx.send(1).unwrap(); // lint:allow pin-across-send — audited\n}\n";
        assert!(findings_for(audited).is_empty());
        // The lock marker does not silence the pin rule (and vice versa).
        let wrong_marker =
            "fn f() {\n    let guard = self.domain.pin();\n    tx.send(1).unwrap(); // lint:allow lock-across-send — audited\n}\n";
        assert_eq!(findings_for(wrong_marker).len(), 1);
    }

    #[test]
    fn pin_and_lock_guards_are_flagged_independently() {
        let both = "fn f() {\n    let pin = self.domain.pin();\n    let guard = self.state.lock();\n    tx.send(1).unwrap();\n}\n";
        let found = findings_for(both);
        assert_eq!(found.len(), 2);
        assert!(found.iter().any(|f| f.contains("epoch pin guard")));
        assert!(found.iter().any(|f| f.contains("lock guard")));
    }

    #[test]
    fn comments_do_not_confuse_the_scanner() {
        let src = "fn f() {\n    // let guard = self.state.lock();\n    tx.send(1).unwrap();\n}\n";
        assert!(findings_for(src).is_empty());
        let block = "fn f() {\n    /* let g = x.lock(); */\n    tx.send(1).unwrap();\n}\n";
        assert!(findings_for(block).is_empty());
    }

    #[test]
    fn hot_path_function_rejects_allocations() {
        let src = "// lint: hot-path\nfn f() {\n    let v = Vec::new();\n    let b = vec![1];\n}\n";
        let found = findings_for(src);
        assert_eq!(found.len(), 2);
        assert!(found[0].contains("`Vec::new(`"));
        assert!(found[0].contains("declared at line 2"));
        assert!(found[1].contains("`vec![`"));
    }

    #[test]
    fn hot_path_region_ends_with_the_function_body() {
        let src = "// lint: hot-path\nfn f() {\n    g();\n}\n\nfn h() {\n    let v = Vec::new();\n}\n";
        assert!(findings_for(src).is_empty());
    }

    #[test]
    fn unmarked_functions_may_allocate() {
        let src = "fn f() {\n    let v = Vec::new();\n    let s = format!(\"x\");\n}\n";
        assert!(findings_for(src).is_empty());
    }

    #[test]
    fn hot_path_allow_marker_silences_audited_allocations() {
        let src = "// lint: hot-path\nfn f() {\n    let v = Vec::new(); // lint:allow hot-path-alloc — cold error arm\n}\n";
        assert!(findings_for(src).is_empty());
    }

    #[test]
    fn inline_small_buffers_do_not_trip_the_hot_path_rule() {
        let src = "// lint: hot-path\nfn f() {\n    let v = ObservedVec::new();\n    let s = smallvec![1];\n    let w = SmallVec::new();\n}\n";
        assert!(findings_for(src).is_empty());
    }

    #[test]
    fn hot_path_rule_spans_multiline_signatures_and_all_patterns() {
        let src = "// lint: hot-path\nfn f(\n    a: u32,\n) -> u32 {\n    let s = format!(\"x\");\n    let v = xs.iter().collect::<Vec<_>>();\n    let w = ys.to_vec();\n    let b = Box::new(1);\n    a\n}\n";
        let found = findings_for(src);
        assert_eq!(found.len(), 4);
        assert!(found.iter().all(|f| f.contains("declared at line 2")));
    }

    #[test]
    fn hot_path_marker_in_plain_comment_position_arms_next_fn_only() {
        let src = "// lint: hot-path\npub(crate) fn fast() {\n    let v = Vec::new();\n}\nfn slow() {\n    let v = Vec::new();\n}\n";
        let found = findings_for(src);
        assert_eq!(found.len(), 1);
        assert!(found[0].contains(":3:"));
    }
}
